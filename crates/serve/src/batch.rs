//! The micro-batching scheduler: a bounded MPSC queue of scan jobs drained
//! by worker threads that coalesce pending requests into one batched
//! forward pass.
//!
//! Connection handlers [`JobQueue::submit`] jobs (non-blocking; a full
//! queue is backpressure, answered 429 upstream). Each worker pops one job
//! (blocking with a poll timeout), opportunistically drains up to
//! `max_batch - 1` more, snapshots the current model `Arc` once, and scores
//! the union of all gadget streams in the batch through
//! [`sevuldet::score_prepared_mut`] — the same function the CLI uses, so
//! batching cannot change results. Each worker keeps a private detector
//! replica keyed on the registry's model version: the replica (and the
//! kernel workspace inside it) stays warm across batches and is only
//! re-cloned when a hot-reload bumps the version. Responses travel back to
//! the connection handler over a per-job channel.

use crate::metrics::Metrics;
use crate::registry::{LoadedModel, ModelChoice, MultiRegistry};
use sevuldet::faults;
use sevuldet::{
    attach_explanations, combine_ensemble, error_json, score_prepared_mut, Detector,
    PreparedSource, ScanReport,
};
use sevuldet_query::QueryEngine;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How a finished job's outcome travels back to whoever submitted it. The
/// thread-per-connection path wraps an `mpsc::Sender` the handler blocks
/// on; the event loop wraps a completion-queue send plus a loop wakeup.
/// Dropping a `Responder` unsent is safe either way: the threaded handler's
/// `recv` fails over to 503, and the event loop's completer answers 503
/// from its own drop guard.
pub struct Responder(Box<dyn FnOnce(JobOutcome) + Send>);

impl Responder {
    /// Wraps an arbitrary delivery function.
    pub fn new(f: impl FnOnce(JobOutcome) + Send + 'static) -> Responder {
        Responder(Box::new(f))
    }

    /// The classic channel delivery (a handler blocked on the paired
    /// receiver). A dropped receiver is not an error.
    pub fn channel(tx: Sender<JobOutcome>) -> Responder {
        Responder::new(move |outcome| {
            let _ = tx.send(outcome);
        })
    }

    /// Delivers the outcome.
    pub fn send(self, outcome: JobOutcome) {
        (self.0)(outcome);
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Responder(..)")
    }
}

/// One scan request in flight.
#[derive(Debug)]
pub struct ScanJob {
    /// Label for the report (`"name"` field of the request, or a default).
    pub name: String,
    /// The C source to scan.
    pub source: String,
    /// Which registry model(s) score this job (resolved by the router — a
    /// worker never sees an unknown name).
    pub choice: ModelChoice,
    /// The `model` value stamped into the response, when the request picked
    /// one (explicitly or via a split). `None` keeps the response
    /// byte-identical to the pre-registry schema.
    pub model_label: Option<String>,
    /// Attach a Fig. 6 explanation to every finding (opt-in; one extra
    /// reference-path forward per gadget).
    pub explain: bool,
    /// When the job entered the queue (latency accounting).
    pub enqueued: Instant,
    /// Absolute deadline; jobs popped after it are answered 504 unscored.
    pub deadline: Instant,
    /// Where the outcome goes.
    pub resp: Responder,
}

/// What became of a scan job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Scored; the JSON report body (status 200).
    Report(String),
    /// The source did not parse; the JSON error body (status 422).
    ParseError(String),
    /// The deadline expired while the job was queued (status 504).
    DeadlineExceeded,
    /// Scoring this request panicked even in isolation — a poison input
    /// (status 500). Other requests in the same batch are unaffected.
    Panicked,
    /// The scoring pipeline broke an internal invariant (e.g. returned the
    /// wrong number of scores). A server bug, answered as a clean 500 —
    /// never via the panic machinery.
    Internal(String),
    /// The queue refused the job (429 on backpressure, 503 while
    /// draining). Workers never produce this; submitters push it through
    /// the job's own [`Responder`] so rejection and result take the same
    /// delivery path.
    Rejected(SubmitError),
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — backpressure (status 429).
    Full,
    /// The server is draining for shutdown (status 503).
    ShuttingDown,
}

/// The bounded scan queue. `SyncSender` gives the bound and the
/// non-blocking `try_send`; the single `Receiver` is shared by all workers
/// behind a mutex, which doubles as the batch-assembly critical section.
pub struct JobQueue {
    tx: Mutex<Option<SyncSender<ScanJob>>>,
    rx: Mutex<Receiver<ScanJob>>,
    metrics: Arc<Metrics>,
}

impl JobQueue {
    /// A queue holding at most `capacity` waiting jobs.
    pub fn new(capacity: usize, metrics: Arc<Metrics>) -> JobQueue {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        JobQueue {
            tx: Mutex::new(Some(tx)),
            rx: Mutex::new(rx),
            metrics,
        }
    }

    /// Non-blocking enqueue. A rejected job is handed back so the caller
    /// can answer through its [`Responder`] (the event loop's completer
    /// lives inside it and must deliver the right status).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] once [`JobQueue::close`] ran — in both
    /// cases alongside the unconsumed job.
    // The large Err is the contract: the rejected job travels back whole so
    // its Responder can answer — boxing would just move the allocation onto
    // the accept path every request pays.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: ScanJob) -> Result<(), (SubmitError, ScanJob)> {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            return Err((SubmitError::ShuttingDown, job));
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(job)) => {
                self.metrics
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                Err((SubmitError::Full, job))
            }
            Err(TrySendError::Disconnected(job)) => Err((SubmitError::ShuttingDown, job)),
        }
    }

    /// Closes the queue for new submissions. Workers drain what is already
    /// queued and then exit — the graceful-shutdown half-close.
    pub fn close(&self) {
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
    }
}

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Most requests coalesced into one forward batch.
    pub max_batch: usize,
    /// `par` sharding inside a batch (threads per forward pass).
    pub inner_jobs: usize,
    /// Test hook: artificial latency per batch, simulating a slow model.
    pub batch_delay: Duration,
    /// The shared incremental query engine every prepare goes through
    /// (memoized, and persistent when the server has a `--cache-dir`).
    pub engine: Arc<QueryEngine>,
}

/// One worker's drain-coalesce-score loop. Returns when the queue is closed
/// and drained.
pub fn worker_loop(
    queue: &JobQueue,
    registry: &MultiRegistry,
    metrics: &Metrics,
    cfg: &WorkerConfig,
) {
    // This worker's warm detector replicas, one slot per registry model,
    // each tagged with the model version it was cloned from. Scoring through
    // `score_prepared_mut` needs `&mut`, and reusing replicas across batches
    // keeps their scratch buffers allocated instead of cloning the
    // registry's detectors per batch. Slots for models this worker never
    // scores stay `None`.
    let mut replicas: Vec<Option<(u64, Detector)>> = (0..registry.len()).map(|_| None).collect();
    loop {
        // Pop one job (poll so a closed-but-empty queue is noticed), then
        // coalesce whatever else is already waiting, up to max_batch. The
        // receiver lock makes batch assembly atomic across workers.
        let batch: Vec<ScanJob> = {
            let rx = queue.rx.lock().unwrap_or_else(|e| e.into_inner());
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(first) => {
                    let _t = sevuldet::trace::span!("serve.batch_assembly");
                    let mut batch = vec![first];
                    while batch.len() < cfg.max_batch.max(1) {
                        match rx.try_recv() {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                    batch
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        metrics
            .queue_depth
            .fetch_sub(batch.len() as i64, Ordering::Relaxed);
        metrics.batch_size.observe(batch.len() as f64);
        if !cfg.batch_delay.is_zero() {
            std::thread::sleep(cfg.batch_delay);
        }
        // Snapshot every model slot once per batch: a batch that started on
        // one generation finishes on it, for every model it touches.
        let models: Vec<Arc<LoadedModel>> = (0..registry.len())
            .map(|i| registry.by_index(i).current())
            .collect();

        // Triage: expired deadlines answer immediately; the rest are
        // prepared (parse + slice + normalize) and scored per model group.
        let now = Instant::now();
        let mut outcomes: Vec<Option<JobOutcome>> = Vec::with_capacity(batch.len());
        let mut prepared: Vec<PreparedSource> = Vec::new();
        let mut prepared_names: Vec<String> = Vec::new();
        // For each prepared item, the job index it came from (to read the
        // model choice back during assembly).
        let mut prepared_jobs: Vec<usize> = Vec::new();
        for (ji, job) in batch.iter().enumerate() {
            // Enqueue happened on a connection-handler thread, so an RAII
            // guard cannot cover the wait; record the measured gap instead.
            sevuldet::trace::observe_duration(
                "serve.queue_wait",
                now.saturating_duration_since(job.enqueued).as_nanos() as u64,
            );
            if now > job.deadline {
                metrics.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                outcomes.push(Some(JobOutcome::DeadlineExceeded));
            } else {
                // Through the shared engine: byte-identical to a direct
                // `prepare_source`, but repeat sources hit the memo (and
                // the persistent store when the server has one).
                match cfg.engine.prepare(&job.source, 1) {
                    Ok(p) => {
                        prepared.push(p);
                        prepared_names.push(job.name.clone());
                        prepared_jobs.push(ji);
                        outcomes.push(None); // filled from the scored batch
                    }
                    Err(e) => outcomes.push(Some(JobOutcome::ParseError(
                        error_json(&job.name, &e).to_string(),
                    ))),
                }
            }
        }

        // Group the prepared items per model slot: a job's choice lists one
        // slot (Single) or several (Ensemble); each slot's group is scored
        // as one batched forward. Slot order is ascending, so grouping is
        // deterministic.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); registry.len()];
        for (pi, &ji) in prepared_jobs.iter().enumerate() {
            match &batch[ji].choice {
                ModelChoice::Single(s) => groups[*s].push(pi),
                ModelChoice::Ensemble(members) => {
                    for &s in members {
                        groups[s].push(pi);
                    }
                }
            }
        }
        let forward_started = Instant::now();
        // (slot, prepared index) → scored outcome.
        let mut scored: std::collections::HashMap<(usize, usize), SlotOutcome> =
            std::collections::HashMap::new();
        {
            let _t = sevuldet::trace::span!("serve.forward");
            for (slot, idxs) in groups.iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let group_started = Instant::now();
                let out = if idxs.len() == prepared.len() {
                    score_batch_isolated(
                        &mut replicas[slot],
                        &models[slot],
                        &prepared,
                        &prepared_names,
                        cfg.inner_jobs,
                        metrics,
                    )
                } else {
                    let sub: Vec<PreparedSource> =
                        idxs.iter().map(|&i| prepared[i].clone()).collect();
                    let sub_names: Vec<String> =
                        idxs.iter().map(|&i| prepared_names[i].clone()).collect();
                    score_batch_isolated(
                        &mut replicas[slot],
                        &models[slot],
                        &sub,
                        &sub_names,
                        cfg.inner_jobs,
                        metrics,
                    )
                };
                let stats = metrics.model_stats(registry.name_of(slot));
                stats.scans.fetch_add(idxs.len() as u64, Ordering::Relaxed);
                stats
                    .forward_duration
                    .observe(group_started.elapsed().as_secs_f64());
                for (&pi, o) in idxs.iter().zip(out) {
                    scored.insert((slot, pi), o);
                }
            }
        }
        if !prepared.is_empty() {
            metrics
                .forward_duration
                .observe(forward_started.elapsed().as_secs_f64());
        }
        let _respond_span = sevuldet::trace::span!("serve.respond");
        let mut pi = 0usize;
        for (job, outcome) in batch.into_iter().zip(outcomes) {
            let outcome = outcome.unwrap_or_else(|| {
                let item = pi;
                pi += 1;
                assemble_job_outcome(&job, item, &mut scored, &mut replicas, &models, registry)
            });
            if matches!(outcome, JobOutcome::Report(_) | JobOutcome::ParseError(_)) {
                metrics
                    .scan_latency
                    .observe(job.enqueued.elapsed().as_secs_f64());
            }
            // A handler that gave up (client timeout) just drops its
            // receiver; that is not a worker error.
            job.resp.send(outcome);
        }
    }
}

/// Builds one prepared job's final outcome out of the per-model scored map:
/// a single model's report (labeled when the request picked a model), or an
/// ensemble combination, with the optional Fig. 6 explanation attached from
/// the (first member) model's warm replica.
fn assemble_job_outcome(
    job: &ScanJob,
    item: usize,
    scored: &mut std::collections::HashMap<(usize, usize), SlotOutcome>,
    replicas: &mut [Option<(u64, Detector)>],
    models: &[Arc<LoadedModel>],
    registry: &MultiRegistry,
) -> JobOutcome {
    let missing =
        || JobOutcome::Internal("scoring produced no result slot for a prepared job".into());
    let (mut report, explain_slot) = match &job.choice {
        ModelChoice::Single(s) => match scored.remove(&(*s, item)) {
            Some(SlotOutcome::Report(r)) => (r, *s),
            Some(SlotOutcome::Panicked) => return JobOutcome::Panicked,
            Some(SlotOutcome::Internal(msg)) => return JobOutcome::Internal(msg),
            None => return missing(),
        },
        ModelChoice::Ensemble(members) => {
            let mut member_reports: Vec<(String, ScanReport)> = Vec::with_capacity(members.len());
            for &s in members {
                match scored.remove(&(s, item)) {
                    Some(SlotOutcome::Report(r)) => {
                        member_reports.push((registry.name_of(s).to_string(), r));
                    }
                    Some(SlotOutcome::Panicked) => return JobOutcome::Panicked,
                    Some(SlotOutcome::Internal(msg)) => return JobOutcome::Internal(msg),
                    None => return missing(),
                }
            }
            match combine_ensemble(&member_reports) {
                Ok(r) => (r, members[0]),
                Err(e) => return JobOutcome::Internal(e.to_string()),
            }
        }
    };
    report.model = job.model_label.clone();
    if job.explain {
        // The explanation runs on the same pinned generation the scores came
        // from. A replica may have been dropped by panic isolation; refresh
        // it the same way scoring does. Explain forwards can in principle
        // panic on a poison input too — isolate them so a worker survives.
        let model = &models[explain_slot];
        let entry = &mut replicas[explain_slot];
        if entry.as_ref().map(|(v, _)| *v) != Some(model.version) {
            *entry = Some((model.version, model.detector.clone()));
        }
        let (_, detector) = entry.as_mut().expect("replica just installed");
        let attached = std::panic::catch_unwind(AssertUnwindSafe(|| {
            attach_explanations(detector, &mut report);
        }));
        if attached.is_err() {
            *entry = None;
            return JobOutcome::Panicked;
        }
    }
    JobOutcome::Report(report.to_json(&job.name).to_string())
}

/// Per-source result of one isolated batch forward.
#[derive(Debug)]
enum SlotOutcome {
    /// Scored normally.
    Report(ScanReport),
    /// Cornered as the poison request of a panicking batch.
    Panicked,
    /// The scoring pipeline returned a typed internal error ([`ScanError`]'s
    /// `Internal` variant) — reported once, cleanly, without riding the
    /// catch_unwind/bisection machinery.
    Internal(String),
}

/// Scores a prepared batch with panic isolation: the forward pass runs
/// under `catch_unwind`, and when it panics the batch is bisected and each
/// half retried, recursively, until the poison request is cornered alone —
/// it gets [`SlotOutcome::Panicked`] (answered 500 upstream); every other
/// request still gets its report. Because [`score_prepared_mut`] is
/// batching-invariant (pinned by the serve integration tests), the
/// surviving requests' reports are byte-identical to what the unsplit batch
/// would have produced.
///
/// A typed [`sevuldet::ScanError::Internal`] from the scorer is *not* a
/// panic: the whole batch is answered [`SlotOutcome::Internal`] directly —
/// one clean 500 per affected request, no bisection.
///
/// The worker's warm replica may be torn mid-forward by a panic, so it is
/// dropped and re-cloned from the batch's pinned model `Arc` before any
/// retry. `worker_panics` counts every caught panic (so one poison request
/// in a batch of N bumps it ~log2(N) times as the bisection corners it).
fn score_batch_isolated(
    replica: &mut Option<(u64, Detector)>,
    model: &Arc<LoadedModel>,
    prepared: &[PreparedSource],
    names: &[String],
    inner_jobs: usize,
    metrics: &Metrics,
) -> Vec<SlotOutcome> {
    if prepared.is_empty() {
        return Vec::new();
    }
    // Refresh the replica only when missing (first batch, or dropped after
    // a panic) or when a reload bumped the version; the model `Arc`
    // snapshot pins which generation this whole batch uses.
    if replica.as_ref().map(|(v, _)| *v) != Some(model.version) {
        *replica = Some((model.version, model.detector.clone()));
    }
    let result = {
        let (_, detector) = replica.as_mut().expect("replica just installed");
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Test hook: `worker_forward=panic@NAME` simulates a poison
            // request without needing a real model-crashing input.
            faults::hit_hint("worker_forward", &names.join("\n"));
            score_prepared_mut(detector, prepared, inner_jobs)
        }))
    };
    match result {
        Ok(Ok(reports)) if reports.len() == prepared.len() => {
            reports.into_iter().map(SlotOutcome::Report).collect()
        }
        Ok(Ok(reports)) => {
            // One report per prepared source is the scorer's contract;
            // answer every slot with a clean 500 rather than guessing at an
            // alignment.
            let msg = format!(
                "scorer returned {} reports for {} sources",
                reports.len(),
                prepared.len()
            );
            (0..prepared.len())
                .map(|_| SlotOutcome::Internal(msg.clone()))
                .collect()
        }
        Ok(Err(e)) => {
            let msg = e.to_string();
            (0..prepared.len())
                .map(|_| SlotOutcome::Internal(msg.clone()))
                .collect()
        }
        Err(_) => {
            metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            // The replica was mid-forward when the panic unwound; its
            // internal scratch state is suspect, so rebuild before retrying.
            *replica = None;
            if prepared.len() == 1 {
                return vec![SlotOutcome::Panicked];
            }
            let mid = prepared.len() / 2;
            let mut out = score_batch_isolated(
                replica,
                model,
                &prepared[..mid],
                &names[..mid],
                inner_jobs,
                metrics,
            );
            out.extend(score_batch_isolated(
                replica,
                model,
                &prepared[mid..],
                &names[mid..],
                inner_jobs,
                metrics,
            ));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(resp: Sender<JobOutcome>) -> ScanJob {
        ScanJob {
            name: "t".into(),
            source: String::new(),
            choice: ModelChoice::Single(0),
            model_label: None,
            explain: false,
            enqueued: Instant::now(),
            deadline: Instant::now() + Duration::from_secs(5),
            resp: Responder::channel(resp),
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let metrics = Arc::new(Metrics::default());
        let q = JobQueue::new(2, metrics.clone());
        let (tx, _rx) = mpsc::channel();
        assert!(q.submit(job(tx.clone())).is_ok());
        assert!(q.submit(job(tx.clone())).is_ok());
        let (err, _rejected) = q.submit(job(tx.clone())).unwrap_err();
        assert_eq!(err, SubmitError::Full);
        assert_eq!(metrics.rejected_queue_full.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 2);
        q.close();
        let (err, _rejected) = q.submit(job(tx)).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }
}
