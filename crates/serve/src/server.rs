//! The HTTP server: connection handling, routing, and the
//! graceful-shutdown choreography tying the queue, workers, and registry
//! together.
//!
//! Two I/O models share every route, the same response construction, and
//! the same compute plane (the [`crate::batch`] workers):
//!
//! * [`IoModel::EventLoop`] (default on Linux) — one epoll loop thread owns
//!   every connection (`crate::eventloop`); scans are handed to the
//!   bounded queue and answered asynchronously through a completer. This is
//!   the 10k-concurrent-connections path.
//! * [`IoModel::Threads`] — the original thread-per-connection path, kept
//!   as the portable fallback and as the byte-identity reference the
//!   event-loop tests compare against.
//!
//! ## Endpoints
//!
//! | Method | Path       | Purpose                                           |
//! |--------|------------|---------------------------------------------------|
//! | POST   | `/scan`    | Scan C source: `{"source": "...", "name": "...",` |
//! |        |            | `"model": "...", "explain": true}`                |
//! | POST   | `/reload`  | Hot-swap model(s) from file (validated); scope    |
//! |        |            | with `{"model": "name"}`, empty body = all        |
//! | GET    | `/metrics` | Prometheus text exposition                        |
//! | GET    | `/healthz` | Liveness + readiness + current model version(s)   |
//!
//! `/scan` answers `200` with a scan report, `400` on malformed requests,
//! `404` when the request names an unknown model, `422` when the source
//! does not parse, `429` when the queue is full (backpressure), `500` when
//! scoring the request panicked (isolated from its batch), `503` while
//! draining, and `504` when the per-request deadline expires before
//! scoring. The `model` field routes to a named registry model (or
//! `ensemble:a,b,c` for a vote across several); `explain: true` attaches
//! the Fig. 6 per-token heatmap to every finding. `/reload` answers `422`
//! when a candidate model is rejected (missing, corrupt, or failing its
//! smoke forward pass) — that model's old version keeps serving; an
//! optional `{"model": "name"}` body scopes the reload to one registry
//! slot. `/healthz` answers `503` with `"draining"` once shutdown has
//! begun. Slow or abusive clients get `408` (header deadline), `431`
//! (oversized head), or `413` (oversized body). See `docs/API.md` for the
//! full reference.

use crate::batch::{worker_loop, JobOutcome, JobQueue, ScanJob, SubmitError, WorkerConfig};
use crate::http::{read_request, write_response_with_headers, HttpError, ReadOutcome, Request};
use crate::metrics::{CloseReason, Metrics};
use crate::registry::{ModelChoice, MultiRegistry};
use sevuldet::Json;
use sevuldet_query::{QueryConfig, QueryEngine};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which I/O model drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One OS thread per connection (portable, caps out near the thread
    /// limit).
    Threads,
    /// One epoll event loop owning every connection (Linux only; the 10k
    /// concurrent connections path).
    EventLoop,
}

impl Default for IoModel {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoModel::EventLoop
        } else {
            IoModel::Threads
        }
    }
}

/// Server tunables. The defaults suit the integration tests and small
/// deployments; production front-ends should size `workers`, `max_batch`,
/// and `queue_cap` to the hardware.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Batch worker threads draining the scan queue.
    pub workers: usize,
    /// Most requests coalesced into one forward batch.
    pub max_batch: usize,
    /// Bounded queue capacity; submissions beyond it get 429.
    pub queue_cap: usize,
    /// `par` sharding inside one forward batch (`0` = all cores).
    pub inner_jobs: usize,
    /// Socket read timeout per request (thread-per-connection path).
    pub read_timeout: Duration,
    /// Default per-request deadline (queue wait + scoring).
    pub deadline: Duration,
    /// Test hook: artificial per-batch latency, simulating a slow model.
    pub batch_delay: Duration,
    /// Persistent artifact-cache directory for `/scan` prepares; `None`
    /// keeps the query engine's memoization in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// On-disk cache budget in bytes (0 = unbounded).
    pub cache_max_bytes: u64,
    /// Which I/O model to serve with.
    pub io_model: IoModel,
    /// Open-connection cap (event-loop path); excess accepts are shed.
    pub max_connections: usize,
    /// Budget for a client to deliver a complete request head (event-loop
    /// path; `408` past it — the slowloris defence).
    pub header_deadline: Duration,
    /// Fleet identity `(index, total)` when this process is one shard
    /// behind a balancer; surfaces in `/healthz` and `/metrics`.
    pub shard: Option<(u32, u32)>,
    /// Test hook: shrink accepted sockets' kernel buffers to this many
    /// bytes, forcing partial reads/writes (event-loop path).
    pub sock_buf_bytes: Option<usize>,
    /// Queue-fill percentage at which `/healthz` reports `degraded`
    /// instead of `ok` (still 200 — the shard keeps serving, but the
    /// balancer and operators see the brownout coming). `0` disables.
    pub degraded_queue_pct: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            max_batch: 8,
            queue_cap: 64,
            inner_jobs: 1,
            read_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(10),
            batch_delay: Duration::ZERO,
            cache_dir: None,
            cache_max_bytes: 0,
            io_model: IoModel::default(),
            max_connections: 16_384,
            header_deadline: Duration::from_secs(5),
            shard: None,
            sock_buf_bytes: None,
            degraded_queue_pct: 80,
        }
    }
}

/// Everything the connection handlers share.
struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    registry: MultiRegistry,
    metrics: Arc<Metrics>,
    draining: Arc<AtomicBool>,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop_accepting: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    event_loop: Option<crate::eventloop::EventLoopHandle>,
    /// The trace observer feeding `sevuldet_stage_duration_seconds`;
    /// unregistered on shutdown (tests run several servers per process).
    observer: sevuldet::trace::ObserverId,
}

impl ServerHandle {
    /// The actual bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics (e.g. for CLI status printing).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Graceful shutdown: stop accepting, reject new scans with 503, drain
    /// every queued job through the workers, then join them. In-flight
    /// requests receive their responses.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accepting.store(true, Ordering::SeqCst);
        // Wake the event loop so it notices the drain flag immediately.
        #[cfg(target_os = "linux")]
        if let Some(lh) = &self.event_loop {
            lh.wake.wake();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Half-close the queue: workers drain the backlog and exit. Every
        // in-flight completion is delivered before the joins return.
        self.shared.queue.close();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        #[cfg(target_os = "linux")]
        if let Some(lh) = self.event_loop.take() {
            lh.wake.wake();
            // Detached, like the blocking path's per-connection threads: a
            // client that was connected before shutdown may still send one
            // last request and must get its explicit `503 draining` answer
            // — which can only happen *after* this call returns. The loop
            // exits on its own once lingering connections close (bounded
            // by its drain linger/grace).
            drop(lh.thread);
        }
        sevuldet::trace::remove_observer(self.observer);
    }
}

/// Binds, spawns the I/O front end (event loop or accept loop) and the
/// batch workers, and returns.
///
/// Accepts either a single [`crate::registry::ModelRegistry`] (served as
/// the lone `default` model, preserving the original single-model API) or
/// a [`MultiRegistry`] with named slots, A/B splits, and ensembles.
///
/// # Errors
///
/// Propagates bind failures; [`IoModel::EventLoop`] off Linux is
/// `Unsupported`.
pub fn start(
    cfg: ServeConfig,
    registry: impl Into<MultiRegistry>,
) -> std::io::Result<ServerHandle> {
    let registry = registry.into();
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    // One query engine shared by every batch worker: repeat scans of the
    // same source (clients retrying, fleets posting identical files) are
    // served from the memo, and `--cache-dir` adds the persistent tier.
    // A cache-dir that cannot be created is a startup error, like a bad
    // bind address; after startup, cache damage only ever means recompute.
    let engine = Arc::new(QueryEngine::open(&QueryConfig {
        cache_dir: cfg.cache_dir.clone(),
        max_bytes: cfg.cache_max_bytes,
        ..QueryConfig::default()
    })?);

    let metrics = Arc::new(Metrics::default());
    // Every span closed anywhere in the process — batch workers, the
    // pipeline crates under them — lands in this server's per-stage
    // histograms. Recording stays off; the observer path alone feeds it.
    let observer = {
        let metrics = metrics.clone();
        sevuldet::trace::add_observer(move |stage, dur_ns| metrics.observe_stage(stage, dur_ns))
    };
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_cap, metrics.clone()),
        registry,
        metrics,
        draining: Arc::new(AtomicBool::new(false)),
        cfg,
    });

    let worker_cfg = WorkerConfig {
        max_batch: shared.cfg.max_batch,
        inner_jobs: shared.cfg.inner_jobs,
        batch_delay: shared.cfg.batch_delay,
        engine,
    };
    let worker_threads: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            let worker_cfg = worker_cfg.clone();
            std::thread::Builder::new()
                .name(format!("svd-batch-{i}"))
                .spawn(move || {
                    worker_loop(
                        &shared.queue,
                        &shared.registry,
                        &shared.metrics,
                        &worker_cfg,
                    )
                })
                .expect("spawn batch worker")
        })
        .collect();

    let stop_accepting = Arc::new(AtomicBool::new(false));
    match shared.cfg.io_model {
        IoModel::Threads => {
            listener.set_nonblocking(true)?;
            let accept_thread = {
                let shared = shared.clone();
                let stop = stop_accepting.clone();
                std::thread::Builder::new()
                    .name("svd-accept".to_string())
                    .spawn(move || accept_loop(listener, shared, stop))
                    .expect("spawn accept loop")
            };
            Ok(ServerHandle {
                addr,
                shared,
                stop_accepting,
                accept_thread: Some(accept_thread),
                worker_threads,
                #[cfg(target_os = "linux")]
                event_loop: None,
                observer,
            })
        }
        IoModel::EventLoop => {
            #[cfg(target_os = "linux")]
            {
                // 10k connections need >10k descriptors; lift the soft
                // limit as far as the hard limit allows (best-effort).
                let _ = crate::sys::raise_nofile_limit();
                let handler = Arc::new(LoopHandler {
                    shared: shared.clone(),
                });
                let loop_cfg = crate::eventloop::LoopConfig {
                    header_deadline: shared.cfg.header_deadline,
                    max_connections: shared.cfg.max_connections,
                    drain_grace: Duration::from_secs(30),
                    sock_buf_bytes: shared.cfg.sock_buf_bytes,
                };
                let lh = crate::eventloop::start_event_loop(
                    listener,
                    handler,
                    shared.draining.clone(),
                    loop_cfg,
                )?;
                Ok(ServerHandle {
                    addr,
                    shared,
                    stop_accepting,
                    accept_thread: None,
                    worker_threads,
                    event_loop: Some(lh),
                    observer,
                })
            }
            #[cfg(not(target_os = "linux"))]
            {
                Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "the event-loop I/O model requires Linux (epoll); use IoModel::Threads",
                ))
            }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("svd-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    shared.metrics.conn.on_accept();
    let reason = handle_connection_inner(stream, shared);
    shared.metrics.conn.on_close(reason);
}

fn handle_connection_inner(stream: TcpStream, shared: &Shared) -> CloseReason {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return CloseReason::IoError;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Closed) => return CloseReason::PeerClosed,
            Err(HttpError { status, msg }) => {
                let body = Json::obj(vec![("error", Json::str(msg))]).to_string();
                respond(&mut writer, shared, status, &body, true);
                return if status == 408 {
                    CloseReason::HeaderTimeout
                } else {
                    CloseReason::ProtocolError
                };
            }
            Ok(ReadOutcome::Request(req)) => {
                // Every response carries a unique trace id, so a client
                // report ("request abc123 was slow") can be lined up with
                // server-side logs and traces.
                let trace_id = sevuldet::trace::next_trace_id();
                let keep_alive = req.keep_alive() && !shared.draining.load(Ordering::SeqCst);
                let (status, content_type, body) = route(&req, shared);
                shared.metrics.count_response(status);
                let ok = write_response_with_headers(
                    &mut writer,
                    status,
                    content_type,
                    body.as_bytes(),
                    &[("X-Trace-Id", &trace_id)],
                    !keep_alive,
                )
                .is_ok();
                if !ok {
                    return CloseReason::IoError;
                }
                if !keep_alive {
                    return CloseReason::ResponseComplete;
                }
            }
        }
    }
}

fn respond(writer: &mut impl Write, shared: &Shared, status: u16, body: &str, close: bool) {
    shared.metrics.count_response(status);
    let trace_id = sevuldet::trace::next_trace_id();
    let _ = write_response_with_headers(
        writer,
        status,
        "application/json",
        body.as_bytes(),
        &[("X-Trace-Id", &trace_id)],
        close,
    );
}

/// Routes one request on the thread-per-connection path, returning
/// `(status, content type, body)`.
fn route(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/scan") => {
            shared.metrics.count_request("scan");
            handle_scan(req, shared)
        }
        ("POST", "/reload") => {
            shared.metrics.count_request("reload");
            let (status, body) = do_reload(shared, &req.body);
            (status, "application/json", body)
        }
        _ => route_sync(req, shared),
    }
}

/// The routes that answer without touching the scan queue or blocking on
/// I/O — shared verbatim by both I/O models, which is what keeps their
/// responses byte-identical. `/scan` and `/reload` are handled by each
/// front end (blocking here, completer-based on the event loop) before
/// falling through to this.
fn route_sync(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => {
            shared.metrics.count_request("metrics");
            (200, "text/plain; version=0.0.4", render_metrics(shared))
        }
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz");
            // Liveness + readiness in one: a draining server answers but is
            // not ready for new work (load balancers should stop routing).
            if shared.draining.load(Ordering::SeqCst) {
                return (
                    503,
                    "application/json",
                    Json::obj(vec![("status", Json::str("draining"))]).to_string(),
                );
            }
            let version = shared.registry.by_index(0).current().version;
            // Readiness has three levels: `ok`, `degraded` (still 200 —
            // the scan queue is nearly full, so new work will soon be
            // queued-rejected or slow; balancers keep routing but
            // operators should act), and `draining` (503, above).
            let pct = shared.cfg.degraded_queue_pct;
            let depth = shared.metrics.queue_depth.load(Ordering::Relaxed).max(0) as u64;
            let degraded = pct > 0
                && shared.cfg.queue_cap > 0
                && depth * 100 >= u64::from(pct) * shared.cfg.queue_cap as u64;
            let mut fields = vec![
                (
                    "status",
                    Json::str(if degraded { "degraded" } else { "ok" }),
                ),
                ("model_version", Json::Num(version as f64)),
            ];
            // With several named models, readiness also reports every
            // slot's version (the scalar above stays: it is the default
            // model's, preserving the single-model response shape).
            let models = Json::Obj(
                shared
                    .registry
                    .versions()
                    .into_iter()
                    .map(|(name, v)| (name, Json::Num(v as f64)))
                    .collect(),
            );
            if shared.registry.len() > 1 {
                fields.push(("models", models));
            }
            if degraded {
                fields.push(("queue_depth", Json::Num(depth as f64)));
                fields.push(("queue_cap", Json::Num(shared.cfg.queue_cap as f64)));
            }
            if let Some((i, n)) = shared.cfg.shard {
                fields.push(("shard", Json::str(format!("{i}/{n}"))));
            }
            (200, "application/json", Json::obj(fields).to_string())
        }
        (_, "/scan" | "/reload" | "/metrics" | "/healthz") => {
            shared.metrics.count_request("other");
            (405, "application/json", error_body("method not allowed"))
        }
        _ => {
            shared.metrics.count_request("other");
            (404, "application/json", error_body("not found"))
        }
    }
}

/// Renders the Prometheus exposition, with the shard identity appended when
/// this process is part of a fleet.
fn render_metrics(shared: &Shared) -> String {
    let default_slot = shared.registry.by_index(0);
    let version = default_slot.current().version;
    let precision = default_slot.precision();
    let mut text = shared
        .metrics
        .render(version, precision.as_str(), &shared.registry.versions());
    if let Some((i, n)) = shared.cfg.shard {
        text.push_str("# HELP sevuldet_shard_info Fleet identity of this shard process.\n");
        text.push_str("# TYPE sevuldet_shard_info gauge\n");
        text.push_str(&format!("sevuldet_shard_info{{shard=\"{i}/{n}\"}} 1\n"));
    }
    text
}

/// Runs a model hot-swap and maps the result to `(status, JSON body)`.
///
/// The optional request body scopes the swap: `{"model": "name"}` reloads
/// only that registry slot (404 when the name is unknown); an empty body
/// reloads every slot. A single-model registry answers in the original
/// pre-multi-model shape (`{"reloaded":true,"version":N}`), so existing
/// clients and the balancer's broadcast aggregation are unaffected.
fn do_reload(shared: &Shared, body: &[u8]) -> (u16, String) {
    let scope: Option<String> = if body.iter().all(u8::is_ascii_whitespace) {
        None
    } else {
        let Ok(text) = std::str::from_utf8(body) else {
            return (400, error_body("body is not UTF-8"));
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return (400, error_body(&format!("invalid JSON: {e}"))),
        };
        match doc.get("model") {
            None => None,
            Some(v) => match v.as_str() {
                Some(name) => Some(name.to_string()),
                None => return (400, error_body("field `model` must be a string")),
            },
        }
    };
    let results = match shared.registry.reload(scope.as_deref()) {
        Ok(results) => results,
        // The scope named a model the registry does not hold: nothing was
        // attempted, nothing changed.
        Err(_) => {
            let name = scope.as_deref().unwrap_or_default();
            return (404, unknown_model_body(&shared.registry, name));
        }
    };
    // Count each slot's outcome. A rejected candidate (unreadable,
    // corrupt, or failing its smoke forward pass) leaves that slot's old
    // model serving and yields 422 with the typed reason.
    let mut all_ok = true;
    for (_, r) in &results {
        if r.is_ok() {
            shared.metrics.reloads.fetch_add(1, Ordering::Relaxed);
        } else {
            all_ok = false;
            shared
                .metrics
                .reload_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(name) = scope {
        // Scoped: exactly one slot was attempted.
        let (status, mut fields) = match &results[0].1 {
            Ok(version) => (
                200,
                vec![
                    ("reloaded", Json::Bool(true)),
                    ("version", Json::Num(*version as f64)),
                ],
            ),
            Err(e) => (
                422,
                vec![
                    ("reloaded", Json::Bool(false)),
                    ("error", Json::str(e.to_string())),
                ],
            ),
        };
        fields.insert(1, ("model", Json::str(name)));
        return (status, Json::obj(fields).to_string());
    }
    if results.len() == 1 {
        // Single-model registry: the original response shape, byte-stable.
        return match &results[0].1 {
            Ok(version) => (
                200,
                Json::obj(vec![
                    ("reloaded", Json::Bool(true)),
                    ("version", Json::Num(*version as f64)),
                ])
                .to_string(),
            ),
            Err(e) => (422, error_body(&e.to_string())),
        };
    }
    // Broadcast across a multi-model registry: per-slot results, 422 if
    // any slot rejected its candidate (the others still swapped).
    let models = results
        .into_iter()
        .map(|(name, r)| {
            let mut fields = vec![
                ("model".to_string(), Json::str(name)),
                ("reloaded".to_string(), Json::Bool(r.is_ok())),
            ];
            match r {
                Ok(version) => fields.push(("version".to_string(), Json::Num(version as f64))),
                Err(e) => fields.push(("error".to_string(), Json::str(e.to_string()))),
            }
            Json::Obj(fields)
        })
        .collect();
    let body = Json::obj(vec![
        ("reloaded", Json::Bool(all_ok)),
        ("models", Json::Arr(models)),
    ])
    .to_string();
    (if all_ok { 200 } else { 422 }, body)
}

/// Typed 404 body for a request naming a model the registry does not hold.
fn unknown_model_body(registry: &MultiRegistry, name: &str) -> String {
    Json::obj(vec![
        ("error", Json::str(format!("unknown model `{name}`"))),
        ("model", Json::str(name)),
        (
            "available",
            Json::Arr(registry.names().map(Json::str).collect()),
        ),
    ])
    .to_string()
}

fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).to_string()
}

/// A validated `/scan` request body.
struct ScanFields {
    name: String,
    source: String,
    deadline: Duration,
    /// Which registry slot(s) score this request.
    choice: ModelChoice,
    /// The label echoed back as the report's `model` field: the explicit
    /// request spec, or the split-picked name. `None` for a plain
    /// single-model scan, keeping that response byte-stable.
    model_label: Option<String>,
    /// Attach the per-token relevance heatmap to every finding.
    explain: bool,
}

/// Validates a `/scan` request (shared by both I/O models so the error
/// bodies stay byte-identical).
fn scan_fields(req: &Request, shared: &Shared) -> Result<ScanFields, (u16, String)> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Err((400, error_body("body is not UTF-8")));
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err((400, error_body(&format!("invalid JSON: {e}")))),
    };
    let Some(source) = doc.get("source").and_then(Json::as_str) else {
        return Err((400, error_body("missing string field `source`")));
    };
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("request")
        .to_string();
    // Model selection: an explicit `model` field (a registry name, or
    // `ensemble:a,b,c`) wins; otherwise a configured A/B split picks by
    // source digest (deterministic, so balancer hash-affinity and the
    // query cache keep working per model); otherwise the default slot.
    let (choice, model_label) = match doc.get("model") {
        Some(v) => {
            let Some(spec) = v.as_str() else {
                return Err((400, error_body("field `model` must be a string")));
            };
            match shared.registry.resolve(spec) {
                Ok(choice) => (choice, Some(spec.to_string())),
                Err(unknown) => return Err((404, unknown_model_body(&shared.registry, &unknown))),
            }
        }
        None if shared.registry.split().is_some() => {
            let idx = shared.registry.pick(source);
            (
                ModelChoice::Single(idx),
                Some(shared.registry.name_of(idx).to_string()),
            )
        }
        None => (ModelChoice::Single(0), None),
    };
    let explain = match doc.get("explain") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return Err((400, error_body("field `explain` must be a boolean"))),
        },
    };
    // Per-request deadline override, capped at the server default so one
    // client cannot park jobs in the queue for minutes.
    let deadline = req
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| Duration::from_millis(ms).min(shared.cfg.deadline))
        .unwrap_or(shared.cfg.deadline);
    Ok(ScanFields {
        name,
        source: source.to_string(),
        deadline,
        choice,
        model_label,
        explain,
    })
}

/// Maps a finished job outcome to `(status, JSON body)` — the single
/// mapping both I/O models answer scans through.
fn outcome_status_body(outcome: JobOutcome) -> (u16, String) {
    match outcome {
        JobOutcome::Report(body) => (200, body),
        JobOutcome::ParseError(body) => (422, body),
        JobOutcome::DeadlineExceeded => (504, error_body("deadline exceeded before scoring")),
        JobOutcome::Panicked => (
            500,
            error_body("scoring this request failed; it was isolated from its batch"),
        ),
        JobOutcome::Internal(msg) => (500, error_body(&format!("internal scoring error: {msg}"))),
        JobOutcome::Rejected(SubmitError::Full) => (429, error_body("scan queue full")),
        JobOutcome::Rejected(SubmitError::ShuttingDown) => (503, error_body("server draining")),
    }
}

fn handle_scan(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    if shared.draining.load(Ordering::SeqCst) {
        return (503, "application/json", error_body("server draining"));
    }
    let fields = match scan_fields(req, shared) {
        Ok(fields) => fields,
        Err((status, body)) => return (status, "application/json", body),
    };
    let deadline = fields.deadline;
    let (resp_tx, resp_rx) = mpsc::channel();
    let job = ScanJob {
        name: fields.name,
        source: fields.source,
        choice: fields.choice,
        model_label: fields.model_label,
        explain: fields.explain,
        enqueued: Instant::now(),
        deadline: Instant::now() + deadline,
        resp: crate::batch::Responder::channel(resp_tx),
    };
    if let Err((e, _job)) = shared.queue.submit(job) {
        let (status, body) = outcome_status_body(JobOutcome::Rejected(e));
        return (status, "application/json", body);
    }
    // Wait for the worker. The margin over the deadline covers scoring time
    // for a job popped just before its deadline, plus the test-hook delay.
    let wait = deadline + shared.cfg.batch_delay + Duration::from_secs(30);
    match resp_rx.recv_timeout(wait) {
        Ok(outcome) => {
            let (status, body) = outcome_status_body(outcome);
            (status, "application/json", body)
        }
        Err(_) => (
            503,
            "application/json",
            error_body("scan worker unavailable"),
        ),
    }
}

/// The event loop's view of this server: same routes, same bodies, but
/// `/scan` and `/reload` answer through a completer instead of blocking the
/// connection's thread (there is none to block).
#[cfg(target_os = "linux")]
struct LoopHandler {
    shared: Arc<Shared>,
}

#[cfg(target_os = "linux")]
impl crate::eventloop::Handler for LoopHandler {
    fn handle(
        &self,
        req: &Request,
        completer: crate::eventloop::CompleterSource<'_>,
    ) -> Option<crate::eventloop::Response> {
        use crate::eventloop::Response;
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/scan") => {
                self.shared.metrics.count_request("scan");
                if self.shared.draining.load(Ordering::SeqCst) {
                    return Some(Response::json(503, error_body("server draining")));
                }
                let fields = match scan_fields(req, &self.shared) {
                    Ok(fields) => fields,
                    Err((status, body)) => return Some(Response::json(status, body)),
                };
                let completer = completer.take();
                let job = ScanJob {
                    name: fields.name,
                    source: fields.source,
                    choice: fields.choice,
                    model_label: fields.model_label,
                    explain: fields.explain,
                    enqueued: Instant::now(),
                    deadline: Instant::now() + fields.deadline,
                    resp: crate::batch::Responder::new(move |outcome| {
                        let (status, body) = outcome_status_body(outcome);
                        completer.complete(Response::json(status, body));
                    }),
                };
                // A rejected job answers through its own responder, so the
                // completer inside it delivers the 429/503 like any result.
                if let Err((e, job)) = self.shared.queue.submit(job) {
                    job.resp.send(JobOutcome::Rejected(e));
                }
                None
            }
            ("POST", "/reload") => {
                self.shared.metrics.count_request("reload");
                // Model loads take real time; never run one on the loop
                // thread. If the spawn itself fails the dropped completer
                // answers 503.
                let shared = self.shared.clone();
                let completer = completer.take();
                let body = req.body.clone();
                let _ = std::thread::Builder::new()
                    .name("svd-reload".to_string())
                    .spawn(move || {
                        let (status, body) = do_reload(&shared, &body);
                        completer.complete(Response::json(status, body));
                    });
                None
            }
            _ => {
                let (status, content_type, body) = route_sync(req, &self.shared);
                Some(Response {
                    status,
                    content_type: content_type.to_string(),
                    body: body.into_bytes(),
                    extra: Vec::new(),
                })
            }
        }
    }

    fn count_response(&self, status: u16) {
        self.shared.metrics.count_response(status);
    }

    fn conn_counters(&self) -> &crate::metrics::ConnCounters {
        &self.shared.metrics.conn
    }
}
