//! The HTTP server: accept loop, connection handling, routing, and the
//! graceful-shutdown choreography tying the queue, workers, and registry
//! together.
//!
//! ## Endpoints
//!
//! | Method | Path       | Purpose                                           |
//! |--------|------------|---------------------------------------------------|
//! | POST   | `/scan`    | Scan C source: `{"source": "...", "name": "..."}` |
//! | POST   | `/reload`  | Hot-swap the model from its file (validated)      |
//! | GET    | `/metrics` | Prometheus text exposition                        |
//! | GET    | `/healthz` | Liveness + readiness + current model version      |
//!
//! `/scan` answers `200` with a scan report, `400` on malformed requests,
//! `422` when the source does not parse, `429` when the queue is full
//! (backpressure), `500` when scoring the request panicked (isolated from
//! its batch), `503` while draining, and `504` when the per-request
//! deadline expires before scoring. `/reload` answers `422` when the
//! candidate model is rejected (missing, corrupt, or failing its smoke
//! forward pass) — the old model keeps serving. `/healthz` answers `503`
//! with `"draining"` once shutdown has begun.

use crate::batch::{worker_loop, JobOutcome, JobQueue, ScanJob, SubmitError, WorkerConfig};
use crate::http::{read_request, write_response_with_headers, HttpError, ReadOutcome, Request};
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use sevuldet::Json;
use sevuldet_query::{QueryConfig, QueryEngine};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. The defaults suit the integration tests and small
/// deployments; production front-ends should size `workers`, `max_batch`,
/// and `queue_cap` to the hardware.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Batch worker threads draining the scan queue.
    pub workers: usize,
    /// Most requests coalesced into one forward batch.
    pub max_batch: usize,
    /// Bounded queue capacity; submissions beyond it get 429.
    pub queue_cap: usize,
    /// `par` sharding inside one forward batch (`0` = all cores).
    pub inner_jobs: usize,
    /// Socket read timeout per request.
    pub read_timeout: Duration,
    /// Default per-request deadline (queue wait + scoring).
    pub deadline: Duration,
    /// Test hook: artificial per-batch latency, simulating a slow model.
    pub batch_delay: Duration,
    /// Persistent artifact-cache directory for `/scan` prepares; `None`
    /// keeps the query engine's memoization in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// On-disk cache budget in bytes (0 = unbounded).
    pub cache_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            max_batch: 8,
            queue_cap: 64,
            inner_jobs: 1,
            read_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(10),
            batch_delay: Duration::ZERO,
            cache_dir: None,
            cache_max_bytes: 0,
        }
    }
}

/// Everything the connection handlers share.
struct Shared {
    cfg: ServeConfig,
    queue: JobQueue,
    registry: ModelRegistry,
    metrics: Arc<Metrics>,
    draining: AtomicBool,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop_accepting: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    /// The trace observer feeding `sevuldet_stage_duration_seconds`;
    /// unregistered on shutdown (tests run several servers per process).
    observer: sevuldet::trace::ObserverId,
}

impl ServerHandle {
    /// The actual bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics (e.g. for CLI status printing).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Graceful shutdown: stop accepting, reject new scans with 503, drain
    /// every queued job through the workers, then join them. In-flight
    /// requests receive their responses.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accepting.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Half-close the queue: workers drain the backlog and exit.
        self.shared.queue.close();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        sevuldet::trace::remove_observer(self.observer);
    }
}

/// Binds, spawns the accept loop and the batch workers, and returns.
///
/// # Errors
///
/// Propagates bind failures.
pub fn start(cfg: ServeConfig, registry: ModelRegistry) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // One query engine shared by every batch worker: repeat scans of the
    // same source (clients retrying, fleets posting identical files) are
    // served from the memo, and `--cache-dir` adds the persistent tier.
    // A cache-dir that cannot be created is a startup error, like a bad
    // bind address; after startup, cache damage only ever means recompute.
    let engine = Arc::new(QueryEngine::open(&QueryConfig {
        cache_dir: cfg.cache_dir.clone(),
        max_bytes: cfg.cache_max_bytes,
        ..QueryConfig::default()
    })?);

    let metrics = Arc::new(Metrics::default());
    // Every span closed anywhere in the process — batch workers, the
    // pipeline crates under them — lands in this server's per-stage
    // histograms. Recording stays off; the observer path alone feeds it.
    let observer = {
        let metrics = metrics.clone();
        sevuldet::trace::add_observer(move |stage, dur_ns| metrics.observe_stage(stage, dur_ns))
    };
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_cap, metrics.clone()),
        registry,
        metrics,
        draining: AtomicBool::new(false),
        cfg,
    });

    let worker_cfg = WorkerConfig {
        max_batch: shared.cfg.max_batch,
        inner_jobs: shared.cfg.inner_jobs,
        batch_delay: shared.cfg.batch_delay,
        engine,
    };
    let worker_threads: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            let worker_cfg = worker_cfg.clone();
            std::thread::Builder::new()
                .name(format!("svd-batch-{i}"))
                .spawn(move || {
                    worker_loop(
                        &shared.queue,
                        &shared.registry,
                        &shared.metrics,
                        &worker_cfg,
                    )
                })
                .expect("spawn batch worker")
        })
        .collect();

    let stop_accepting = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let shared = shared.clone();
        let stop = stop_accepting.clone();
        std::thread::Builder::new()
            .name("svd-accept".to_string())
            .spawn(move || accept_loop(listener, shared, stop))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        addr,
        shared,
        stop_accepting,
        accept_thread: Some(accept_thread),
        worker_threads,
        observer,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("svd-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Closed) => return,
            Err(HttpError { status, msg }) => {
                let body = Json::obj(vec![("error", Json::str(msg))]).to_string();
                respond(&mut writer, shared, status, &body, true);
                return;
            }
            Ok(ReadOutcome::Request(req)) => {
                // Every response carries a unique trace id, so a client
                // report ("request abc123 was slow") can be lined up with
                // server-side logs and traces.
                let trace_id = sevuldet::trace::next_trace_id();
                let keep_alive = req.keep_alive() && !shared.draining.load(Ordering::SeqCst);
                let (status, content_type, body) = route(&req, shared);
                shared.metrics.count_response(status);
                let ok = write_response_with_headers(
                    &mut writer,
                    status,
                    content_type,
                    body.as_bytes(),
                    &[("X-Trace-Id", &trace_id)],
                    !keep_alive,
                )
                .is_ok();
                if !ok || !keep_alive {
                    return;
                }
            }
        }
    }
}

fn respond(writer: &mut impl Write, shared: &Shared, status: u16, body: &str, close: bool) {
    shared.metrics.count_response(status);
    let trace_id = sevuldet::trace::next_trace_id();
    let _ = write_response_with_headers(
        writer,
        status,
        "application/json",
        body.as_bytes(),
        &[("X-Trace-Id", &trace_id)],
        close,
    );
}

/// Routes one request, returning `(status, content type, body)`.
fn route(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/scan") => {
            shared.metrics.count_request("scan");
            handle_scan(req, shared)
        }
        ("GET", "/metrics") => {
            shared.metrics.count_request("metrics");
            let version = shared.registry.current().version;
            let precision = shared.registry.precision();
            (
                200,
                "text/plain; version=0.0.4",
                shared.metrics.render(version, precision.as_str()),
            )
        }
        ("POST", "/reload") => {
            shared.metrics.count_request("reload");
            match shared.registry.reload() {
                Ok(version) => {
                    shared.metrics.reloads.fetch_add(1, Ordering::Relaxed);
                    (
                        200,
                        "application/json",
                        Json::obj(vec![
                            ("reloaded", Json::Bool(true)),
                            ("version", Json::Num(version as f64)),
                        ])
                        .to_string(),
                    )
                }
                // The candidate was unreadable, corrupt, or failed its
                // smoke test: the old model keeps serving, the rejection is
                // counted, and the client gets 422 with the typed reason.
                Err(e) => {
                    shared
                        .metrics
                        .reload_failures
                        .fetch_add(1, Ordering::Relaxed);
                    (422, "application/json", error_body(&e.to_string()))
                }
            }
        }
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz");
            // Liveness + readiness in one: a draining server answers but is
            // not ready for new work (load balancers should stop routing).
            if shared.draining.load(Ordering::SeqCst) {
                return (
                    503,
                    "application/json",
                    Json::obj(vec![("status", Json::str("draining"))]).to_string(),
                );
            }
            let version = shared.registry.current().version;
            (
                200,
                "application/json",
                Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("model_version", Json::Num(version as f64)),
                ])
                .to_string(),
            )
        }
        (_, "/scan" | "/reload" | "/metrics" | "/healthz") => {
            shared.metrics.count_request("other");
            (405, "application/json", error_body("method not allowed"))
        }
        _ => {
            shared.metrics.count_request("other");
            (404, "application/json", error_body("not found"))
        }
    }
}

fn error_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).to_string()
}

fn handle_scan(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    if shared.draining.load(Ordering::SeqCst) {
        return (503, "application/json", error_body("server draining"));
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return (400, "application/json", error_body("body is not UTF-8"));
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return (
                400,
                "application/json",
                error_body(&format!("invalid JSON: {e}")),
            )
        }
    };
    let Some(source) = doc.get("source").and_then(Json::as_str) else {
        return (
            400,
            "application/json",
            error_body("missing string field `source`"),
        );
    };
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("request")
        .to_string();
    // Per-request deadline override, capped at the server default so one
    // client cannot park jobs in the queue for minutes.
    let deadline_ms = req
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| Duration::from_millis(ms).min(shared.cfg.deadline))
        .unwrap_or(shared.cfg.deadline);

    let (resp_tx, resp_rx) = mpsc::channel();
    let job = ScanJob {
        name,
        source: source.to_string(),
        enqueued: Instant::now(),
        deadline: Instant::now() + deadline_ms,
        resp: resp_tx,
    };
    match shared.queue.submit(job) {
        Err(SubmitError::Full) => return (429, "application/json", error_body("scan queue full")),
        Err(SubmitError::ShuttingDown) => {
            return (503, "application/json", error_body("server draining"))
        }
        Ok(()) => {}
    }
    // Wait for the worker. The margin over the deadline covers scoring time
    // for a job popped just before its deadline, plus the test-hook delay.
    let wait = deadline_ms + shared.cfg.batch_delay + Duration::from_secs(30);
    match resp_rx.recv_timeout(wait) {
        Ok(JobOutcome::Report(body)) => (200, "application/json", body),
        Ok(JobOutcome::ParseError(body)) => (422, "application/json", body),
        Ok(JobOutcome::DeadlineExceeded) => (
            504,
            "application/json",
            error_body("deadline exceeded before scoring"),
        ),
        Ok(JobOutcome::Panicked) => (
            500,
            "application/json",
            error_body("scoring this request failed; it was isolated from its batch"),
        ),
        Ok(JobOutcome::Internal(msg)) => (
            500,
            "application/json",
            error_body(&format!("internal scoring error: {msg}")),
        ),
        Err(_) => (
            503,
            "application/json",
            error_body("scan worker unavailable"),
        ),
    }
}
