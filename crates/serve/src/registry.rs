//! The model registry: one warm [`Detector`] behind an atomically swappable
//! `Arc`, reloadable from disk while requests are in flight.
//!
//! `POST /reload` re-reads the model file, **validates the candidate** —
//! the sealed-footer checksum via [`sevuldet::load_detector`], plus a smoke
//! forward pass proving it can actually score — and only then swaps the
//! `Arc` under a short write lock. A candidate that is missing, corrupt, or
//! structurally wrong for its declared architecture is rejected with a
//! typed [`RegistryError`] and the previous model keeps serving. Batch
//! workers snapshot the `Arc` once per batch, so a batch that started on
//! the old model finishes on the old model — reloads never tear a forward
//! pass and never drop in-flight requests.

use sevuldet::{load_detector, Detector, PersistError, Precision};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One slot's reload outcome: the slot name paired with its new version,
/// or the error that kept the previous model serving.
pub type SlotReload = (String, Result<u64, RegistryError>);

/// Why a model could not be (re)loaded. The old model keeps serving in
/// every case.
#[derive(Debug)]
pub enum RegistryError {
    /// The model file could not be read.
    Io(std::io::Error),
    /// The bytes are not a valid saved detector (bad magic, failed
    /// checksum, truncation, wrong-architecture parameters, ...).
    Invalid(PersistError),
    /// The detector deserialized but failed the smoke forward pass
    /// (panicked or produced a non-probability) — never swap it in.
    SmokeTest(String),
    /// The detector cannot serve at the requested precision tier (e.g. int8
    /// asked of a model saved without calibration scales, or a fast tier
    /// asked of an architecture without an inference engine).
    Precision(String),
    /// The registry configuration itself is invalid (duplicate model name,
    /// empty model set, split naming an unknown model, ...).
    Config(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "reading model file: {e}"),
            RegistryError::Invalid(e) => write!(f, "{e}"),
            RegistryError::SmokeTest(msg) => {
                write!(f, "candidate model failed smoke test: {msg}")
            }
            RegistryError::Precision(msg) => {
                write!(f, "model cannot serve at requested precision: {msg}")
            }
            RegistryError::Config(msg) => write!(f, "registry configuration: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One loaded model generation.
#[derive(Debug)]
pub struct LoadedModel {
    /// The warm detector (scoring takes `&self`; workers clone per shard).
    pub detector: Detector,
    /// Monotonic generation number, starting at 1 for the initial load.
    pub version: u64,
}

/// A hot-reloadable model slot tied to a file path.
#[derive(Debug)]
pub struct ModelRegistry {
    path: PathBuf,
    current: RwLock<Arc<LoadedModel>>,
    next_version: AtomicU64,
    precision: Precision,
}

impl ModelRegistry {
    /// Loads and validates the initial model from `path` at the f64
    /// reference precision.
    ///
    /// # Errors
    ///
    /// A typed [`RegistryError`] when the file is unreadable, invalid, or
    /// fails the smoke forward pass.
    pub fn open(path: impl AsRef<Path>) -> Result<ModelRegistry, RegistryError> {
        ModelRegistry::open_with_precision(path, Precision::F64)
    }

    /// [`ModelRegistry::open`], but every load (initial and reload) serves
    /// at `precision`. The smoke test runs *after* the tier switch, so a
    /// candidate that cannot score at the serving precision is rejected the
    /// same way a corrupt file is.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::open`], plus [`RegistryError::Precision`] when
    /// the model cannot run at `precision`.
    pub fn open_with_precision(
        path: impl AsRef<Path>,
        precision: Precision,
    ) -> Result<ModelRegistry, RegistryError> {
        let path = path.as_ref().to_path_buf();
        let detector = read_model(&path, precision)?;
        Ok(ModelRegistry {
            path,
            current: RwLock::new(Arc::new(LoadedModel {
                detector,
                version: 1,
            })),
            next_version: AtomicU64::new(2),
            precision,
        })
    }

    /// The precision tier every load serves at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The currently served model. Callers hold the `Arc` for as long as
    /// they need the model; a concurrent reload swaps the slot without
    /// invalidating it.
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Re-reads and validates the model file, swapping it in only on
    /// success; the new version number is returned. On any failure the
    /// previous model keeps serving, untouched.
    ///
    /// # Errors
    ///
    /// A typed [`RegistryError`] (see [`ModelRegistry::open`]).
    pub fn reload(&self) -> Result<u64, RegistryError> {
        let detector = read_model(&self.path, self.precision)?;
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let loaded = Arc::new(LoadedModel { detector, version });
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = loaded;
        Ok(version)
    }

    /// The path reloads are served from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// How a request selects models out of a [`MultiRegistry`]: one model by
/// slot index, or an ensemble of several (scored independently, combined by
/// vote). Indices are stable for the life of the registry — the model set
/// is fixed at startup; only the *contents* of each slot hot-reload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelChoice {
    /// Route to one model.
    Single(usize),
    /// Score on every listed member and combine with
    /// [`sevuldet::combine_ensemble`].
    Ensemble(Vec<usize>),
}

/// A named collection of hot-reloadable model slots plus an optional
/// weighted A/B split. The first slot is the **default**: requests that
/// name no model (and no split is configured) route there, and its version
/// backs the unlabeled `sevuldet_model_version` gauge, so a single-model
/// fleet behaves exactly as before this registry existed.
#[derive(Debug)]
pub struct MultiRegistry {
    slots: Vec<(String, ModelRegistry)>,
    split: Option<Vec<(usize, u32)>>,
}

impl From<ModelRegistry> for MultiRegistry {
    /// Wraps a single anonymous registry under the name `default`.
    fn from(reg: ModelRegistry) -> MultiRegistry {
        MultiRegistry {
            slots: vec![("default".to_string(), reg)],
            split: None,
        }
    }
}

impl MultiRegistry {
    /// Loads and validates every named model at `precision`. The order of
    /// `specs` is preserved; the first entry becomes the default model.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Config`] for an empty spec list or duplicate name;
    /// otherwise the failing model's [`RegistryError`] with its name folded
    /// into the message.
    pub fn open(
        specs: &[(String, PathBuf)],
        precision: Precision,
    ) -> Result<MultiRegistry, RegistryError> {
        if specs.is_empty() {
            return Err(RegistryError::Config("no models configured".into()));
        }
        let mut slots = Vec::with_capacity(specs.len());
        for (name, path) in specs {
            if slots.iter().any(|(n, _)| n == name) {
                return Err(RegistryError::Config(format!(
                    "duplicate model name `{name}`"
                )));
            }
            let reg = ModelRegistry::open_with_precision(path, precision).map_err(|e| match e {
                RegistryError::Io(io) => RegistryError::Io(std::io::Error::new(
                    io.kind(),
                    format!("model `{name}`: {io}"),
                )),
                other => other,
            })?;
            slots.push((name.clone(), reg));
        }
        Ok(MultiRegistry { slots, split: None })
    }

    /// Number of model slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry holds no models (never true for a constructed
    /// registry; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The default model's name (the first `--model` flag).
    pub fn default_name(&self) -> &str {
        &self.slots[0].0
    }

    /// Model names in slot order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|(n, _)| n.as_str())
    }

    /// The slot index of `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|(n, _)| n == name)
    }

    /// The registry in slot `idx` (panics on out-of-range — indices come
    /// from [`MultiRegistry::resolve`] and are always valid).
    pub fn by_index(&self, idx: usize) -> &ModelRegistry {
        &self.slots[idx].1
    }

    /// The name of slot `idx`.
    pub fn name_of(&self, idx: usize) -> &str {
        &self.slots[idx].0
    }

    /// Resolves a request's `model` field: a plain name, or
    /// `ensemble:a,b,c`. Returns the offending name on failure so callers
    /// can build a typed 404.
    ///
    /// # Errors
    ///
    /// The unresolvable model name (or a description of an empty ensemble).
    pub fn resolve(&self, spec: &str) -> Result<ModelChoice, String> {
        if let Some(list) = spec.strip_prefix("ensemble:") {
            let mut members = Vec::new();
            for name in list.split(',') {
                let name = name.trim();
                if name.is_empty() {
                    continue;
                }
                members.push(self.index_of(name).ok_or_else(|| name.to_string())?);
            }
            if members.is_empty() {
                return Err("ensemble with no members".to_string());
            }
            return Ok(ModelChoice::Ensemble(members));
        }
        self.index_of(spec)
            .map(ModelChoice::Single)
            .ok_or_else(|| spec.to_string())
    }

    /// Configures the weighted A/B split for requests that name no model.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Config`] when an entry names an unknown model, a
    /// weight is zero, or the list is empty.
    pub fn set_split(&mut self, entries: &[(String, u32)]) -> Result<(), RegistryError> {
        if entries.is_empty() {
            return Err(RegistryError::Config("empty split".into()));
        }
        let mut resolved = Vec::with_capacity(entries.len());
        for (name, weight) in entries {
            let idx = self.index_of(name).ok_or_else(|| {
                RegistryError::Config(format!("split names unknown model `{name}`"))
            })?;
            if *weight == 0 {
                return Err(RegistryError::Config(format!(
                    "split weight for `{name}` must be positive"
                )));
            }
            resolved.push((idx, *weight));
        }
        self.split = Some(resolved);
        Ok(())
    }

    /// The configured split as `(slot index, weight)` pairs.
    pub fn split(&self) -> Option<&[(usize, u32)]> {
        self.split.as_deref()
    }

    /// Picks the slot for a request that named no model: the default slot,
    /// or — when a split is configured — a deterministic weighted choice
    /// keyed on the source digest. The same source always lands on the same
    /// model, so the balancer's consistent-hash affinity and the query
    /// cache stay coherent per model.
    pub fn pick(&self, source: &str) -> usize {
        let Some(split) = &self.split else { return 0 };
        let digest = sevuldet::sha256_hex(source.as_bytes());
        // The leading 64 bits of the digest, uniform over sources.
        let point = u64::from_str_radix(&digest[..16], 16).unwrap_or(0);
        let total: u64 = split.iter().map(|(_, w)| u64::from(*w)).sum();
        let mut ticket = point % total;
        for (idx, w) in split {
            let w = u64::from(*w);
            if ticket < w {
                return *idx;
            }
            ticket -= w;
        }
        split[0].0
    }

    /// Reloads one named slot, or every slot when `name` is `None`. Each
    /// result carries the slot name; a failed slot keeps its previous model
    /// serving and never affects the others.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Config`] when `name` is unknown (inside that slot's
    /// result entry would be wrong — the scope itself is invalid).
    pub fn reload(&self, name: Option<&str>) -> Result<Vec<SlotReload>, RegistryError> {
        match name {
            Some(n) => {
                let idx = self
                    .index_of(n)
                    .ok_or_else(|| RegistryError::Config(format!("unknown model `{n}`")))?;
                Ok(vec![(n.to_string(), self.slots[idx].1.reload())])
            }
            None => Ok(self
                .slots
                .iter()
                .map(|(n, reg)| (n.clone(), reg.reload()))
                .collect()),
        }
    }

    /// `(name, version)` for every slot, in slot order.
    pub fn versions(&self) -> Vec<(String, u64)> {
        self.slots
            .iter()
            .map(|(n, reg)| (n.clone(), reg.current().version))
            .collect()
    }
}

fn read_model(path: &Path, precision: Precision) -> Result<Detector, RegistryError> {
    let text = std::fs::read_to_string(path).map_err(RegistryError::Io)?;
    let mut detector = load_detector(&text).map_err(RegistryError::Invalid)?;
    detector
        .set_precision(precision)
        .map_err(|e| RegistryError::Precision(e.to_string()))?;
    smoke_test(detector)
}

/// One tiny forward pass before a candidate may serve: a model that
/// deserialized cleanly can still blow up at score time (NaN weights, an
/// internal inconsistency the shape checks cannot see). Panics are caught
/// so a pathological candidate cannot take down the reload path itself.
fn smoke_test(detector: Detector) -> Result<Detector, RegistryError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let probe = vec![vec!["strcpy".to_string(), "buf".to_string()]];
        let probs = detector.predict_batch(&probe, 1);
        (probs.len(), probs.first().copied())
    }));
    match result {
        Ok((1, Some(p))) if p.is_finite() && (0.0..=1.0).contains(&p) => Ok(detector),
        Ok((_, p)) => Err(RegistryError::SmokeTest(format!(
            "probe scored {p:?}, want one probability in [0, 1]"
        ))),
        Err(_) => Err(RegistryError::SmokeTest(
            "probe forward pass panicked".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet::{save_detector, Detector, GadgetSpec, ModelKind, TrainConfig};
    use sevuldet_dataset::{sard, SardConfig};

    fn tiny_model_text(seed: u64) -> String {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            seed,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 1,
            cnn_channels: 6,
            seed,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        save_detector(&mut det)
    }

    #[test]
    fn registry_opens_at_fast_precision_tiers() {
        let dir = std::env::temp_dir().join(format!("svd-registry-prec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.svd");
        std::fs::write(&path, tiny_model_text(3)).unwrap();
        for precision in [Precision::F32, Precision::Int8] {
            let reg = ModelRegistry::open_with_precision(&path, precision)
                .unwrap_or_else(|e| panic!("open at {precision}: {e}"));
            assert_eq!(reg.precision(), precision);
            // The smoke test already proved the tier scores a probability;
            // reloads keep the tier.
            assert_eq!(reg.reload().expect("reload keeps tier"), 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_bumps_version_and_old_arc_survives() {
        let dir = std::env::temp_dir().join(format!("svd-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.svd");
        std::fs::write(&path, tiny_model_text(1)).unwrap();
        let reg = ModelRegistry::open(&path).expect("initial load");
        let before = reg.current();
        assert_eq!(before.version, 1);

        std::fs::write(&path, tiny_model_text(2)).unwrap();
        let v = reg.reload().expect("reload");
        assert_eq!(v, 2);
        assert_eq!(reg.current().version, 2);
        // The pre-reload handle still works: in-flight batches finish on the
        // model they started with.
        assert_eq!(before.version, 1);
        let probs = before
            .detector
            .predict_batch(&[vec!["strcpy".to_string()]], 1);
        assert_eq!(probs.len(), 1);

        // A broken file fails the reload with a typed error but keeps
        // serving the old model.
        std::fs::write(&path, "not a model").unwrap();
        assert!(matches!(
            reg.reload().unwrap_err(),
            RegistryError::Invalid(PersistError::BadMagic)
        ));
        assert_eq!(reg.current().version, 2);

        // A deleted file is an I/O error, also non-fatal.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(reg.reload().unwrap_err(), RegistryError::Io(_)));
        assert_eq!(reg.current().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A two-model registry (`champion`, `challenger`) in a fresh temp dir.
    fn two_model_registry(tag: &str) -> (std::path::PathBuf, MultiRegistry) {
        let dir = std::env::temp_dir().join(format!("svd-multireg-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.svd");
        let b = dir.join("b.svd");
        std::fs::write(&a, tiny_model_text(1)).unwrap();
        std::fs::write(&b, tiny_model_text(2)).unwrap();
        let reg = MultiRegistry::open(
            &[("champion".to_string(), a), ("challenger".to_string(), b)],
            Precision::F64,
        )
        .expect("two-model open");
        (dir, reg)
    }

    #[test]
    fn multi_registry_resolves_names_and_ensembles() {
        let (dir, reg) = two_model_registry("resolve");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.default_name(), "champion");
        assert_eq!(reg.resolve("champion"), Ok(ModelChoice::Single(0)));
        assert_eq!(reg.resolve("challenger"), Ok(ModelChoice::Single(1)));
        assert_eq!(
            reg.resolve("ensemble:champion,challenger"),
            Ok(ModelChoice::Ensemble(vec![0, 1]))
        );
        // The offending name comes back verbatim so routes can build the
        // typed 404 body.
        assert_eq!(reg.resolve("nope"), Err("nope".to_string()));
        assert_eq!(
            reg.resolve("ensemble:champion,nope"),
            Err("nope".to_string())
        );
        assert_eq!(
            reg.resolve("ensemble:"),
            Err("ensemble with no members".to_string())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_registry_rejects_bad_configurations() {
        assert!(matches!(
            MultiRegistry::open(&[], Precision::F64),
            Err(RegistryError::Config(_))
        ));
        let dir = std::env::temp_dir().join(format!("svd-multireg-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.svd");
        std::fs::write(&a, tiny_model_text(1)).unwrap();
        assert!(matches!(
            MultiRegistry::open(
                &[("m".to_string(), a.clone()), ("m".to_string(), a.clone())],
                Precision::F64
            ),
            Err(RegistryError::Config(_))
        ));
        let mut reg = MultiRegistry::open(&[("m".to_string(), a)], Precision::F64).unwrap();
        assert!(matches!(
            reg.set_split(&[("ghost".to_string(), 1)]),
            Err(RegistryError::Config(_))
        ));
        assert!(matches!(
            reg.set_split(&[("m".to_string(), 0)]),
            Err(RegistryError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_pick_is_deterministic_per_source_digest() {
        let (dir, mut reg) = two_model_registry("split");
        // No split: everything routes to the default slot.
        assert_eq!(reg.pick("int main() {}"), 0);
        reg.set_split(&[("champion".to_string(), 90), ("challenger".to_string(), 10)])
            .unwrap();
        // Deterministic: the same source always lands on the same slot,
        // across calls and registry instances (the digest decides).
        let sources: Vec<String> = (0..200)
            .map(|i| format!("void f{i}(char *p) {{ strcpy(p, \"x\"); }}"))
            .collect();
        let picks: Vec<usize> = sources.iter().map(|s| reg.pick(s)).collect();
        let again: Vec<usize> = sources.iter().map(|s| reg.pick(s)).collect();
        assert_eq!(picks, again);
        // A 90/10 split over 200 distinct sources hits both slots, with
        // the champion taking the clear majority.
        let challenger = picks.iter().filter(|&&p| p == 1).count();
        assert!(challenger > 0, "10% arm never chosen over 200 sources");
        assert!(
            challenger < 60,
            "10% arm chosen {challenger}/200 times — weighting is off"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scoped_reload_isolates_the_corrupt_slot() {
        let (dir, reg) = two_model_registry("scoped");
        // Corrupt the challenger's file; a reload scoped to it fails inside
        // its result entry, keeps its old model serving, and never touches
        // the champion.
        std::fs::write(dir.join("b.svd"), "not a model").unwrap();
        let results = reg.reload(Some("challenger")).expect("valid scope");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "challenger");
        assert!(results[0].1.is_err());
        assert_eq!(
            reg.versions(),
            vec![("champion".to_string(), 1), ("challenger".to_string(), 1)]
        );
        // The champion reloads independently.
        let results = reg.reload(Some("champion")).expect("valid scope");
        assert_eq!(results[0].1.as_ref().copied().unwrap(), 2);
        assert_eq!(
            reg.versions(),
            vec![("champion".to_string(), 2), ("challenger".to_string(), 1)]
        );
        // A broadcast reports each slot's own outcome.
        let results = reg.reload(None).expect("broadcast");
        assert!(results[0].1.is_ok());
        assert!(results[1].1.is_err());
        // An unknown scope is a configuration error: nothing attempted.
        assert!(matches!(
            reg.reload(Some("ghost")),
            Err(RegistryError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
