//! The model registry: one warm [`Detector`] behind an atomically swappable
//! `Arc`, reloadable from disk while requests are in flight.
//!
//! `POST /reload` re-reads the model file, **validates the candidate** —
//! the sealed-footer checksum via [`sevuldet::load_detector`], plus a smoke
//! forward pass proving it can actually score — and only then swaps the
//! `Arc` under a short write lock. A candidate that is missing, corrupt, or
//! structurally wrong for its declared architecture is rejected with a
//! typed [`RegistryError`] and the previous model keeps serving. Batch
//! workers snapshot the `Arc` once per batch, so a batch that started on
//! the old model finishes on the old model — reloads never tear a forward
//! pass and never drop in-flight requests.

use sevuldet::{load_detector, Detector, PersistError, Precision};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Why a model could not be (re)loaded. The old model keeps serving in
/// every case.
#[derive(Debug)]
pub enum RegistryError {
    /// The model file could not be read.
    Io(std::io::Error),
    /// The bytes are not a valid saved detector (bad magic, failed
    /// checksum, truncation, wrong-architecture parameters, ...).
    Invalid(PersistError),
    /// The detector deserialized but failed the smoke forward pass
    /// (panicked or produced a non-probability) — never swap it in.
    SmokeTest(String),
    /// The detector cannot serve at the requested precision tier (e.g. int8
    /// asked of a model saved without calibration scales, or a fast tier
    /// asked of an architecture without an inference engine).
    Precision(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "reading model file: {e}"),
            RegistryError::Invalid(e) => write!(f, "{e}"),
            RegistryError::SmokeTest(msg) => {
                write!(f, "candidate model failed smoke test: {msg}")
            }
            RegistryError::Precision(msg) => {
                write!(f, "model cannot serve at requested precision: {msg}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One loaded model generation.
#[derive(Debug)]
pub struct LoadedModel {
    /// The warm detector (scoring takes `&self`; workers clone per shard).
    pub detector: Detector,
    /// Monotonic generation number, starting at 1 for the initial load.
    pub version: u64,
}

/// A hot-reloadable model slot tied to a file path.
#[derive(Debug)]
pub struct ModelRegistry {
    path: PathBuf,
    current: RwLock<Arc<LoadedModel>>,
    next_version: AtomicU64,
    precision: Precision,
}

impl ModelRegistry {
    /// Loads and validates the initial model from `path` at the f64
    /// reference precision.
    ///
    /// # Errors
    ///
    /// A typed [`RegistryError`] when the file is unreadable, invalid, or
    /// fails the smoke forward pass.
    pub fn open(path: impl AsRef<Path>) -> Result<ModelRegistry, RegistryError> {
        ModelRegistry::open_with_precision(path, Precision::F64)
    }

    /// [`ModelRegistry::open`], but every load (initial and reload) serves
    /// at `precision`. The smoke test runs *after* the tier switch, so a
    /// candidate that cannot score at the serving precision is rejected the
    /// same way a corrupt file is.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::open`], plus [`RegistryError::Precision`] when
    /// the model cannot run at `precision`.
    pub fn open_with_precision(
        path: impl AsRef<Path>,
        precision: Precision,
    ) -> Result<ModelRegistry, RegistryError> {
        let path = path.as_ref().to_path_buf();
        let detector = read_model(&path, precision)?;
        Ok(ModelRegistry {
            path,
            current: RwLock::new(Arc::new(LoadedModel {
                detector,
                version: 1,
            })),
            next_version: AtomicU64::new(2),
            precision,
        })
    }

    /// The precision tier every load serves at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The currently served model. Callers hold the `Arc` for as long as
    /// they need the model; a concurrent reload swaps the slot without
    /// invalidating it.
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Re-reads and validates the model file, swapping it in only on
    /// success; the new version number is returned. On any failure the
    /// previous model keeps serving, untouched.
    ///
    /// # Errors
    ///
    /// A typed [`RegistryError`] (see [`ModelRegistry::open`]).
    pub fn reload(&self) -> Result<u64, RegistryError> {
        let detector = read_model(&self.path, self.precision)?;
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let loaded = Arc::new(LoadedModel { detector, version });
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = loaded;
        Ok(version)
    }

    /// The path reloads are served from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn read_model(path: &Path, precision: Precision) -> Result<Detector, RegistryError> {
    let text = std::fs::read_to_string(path).map_err(RegistryError::Io)?;
    let mut detector = load_detector(&text).map_err(RegistryError::Invalid)?;
    detector
        .set_precision(precision)
        .map_err(|e| RegistryError::Precision(e.to_string()))?;
    smoke_test(detector)
}

/// One tiny forward pass before a candidate may serve: a model that
/// deserialized cleanly can still blow up at score time (NaN weights, an
/// internal inconsistency the shape checks cannot see). Panics are caught
/// so a pathological candidate cannot take down the reload path itself.
fn smoke_test(detector: Detector) -> Result<Detector, RegistryError> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let probe = vec![vec!["strcpy".to_string(), "buf".to_string()]];
        let probs = detector.predict_batch(&probe, 1);
        (probs.len(), probs.first().copied())
    }));
    match result {
        Ok((1, Some(p))) if p.is_finite() && (0.0..=1.0).contains(&p) => Ok(detector),
        Ok((_, p)) => Err(RegistryError::SmokeTest(format!(
            "probe scored {p:?}, want one probability in [0, 1]"
        ))),
        Err(_) => Err(RegistryError::SmokeTest(
            "probe forward pass panicked".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet::{save_detector, Detector, GadgetSpec, ModelKind, TrainConfig};
    use sevuldet_dataset::{sard, SardConfig};

    fn tiny_model_text(seed: u64) -> String {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            seed,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 1,
            cnn_channels: 6,
            seed,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        save_detector(&mut det)
    }

    #[test]
    fn registry_opens_at_fast_precision_tiers() {
        let dir = std::env::temp_dir().join(format!("svd-registry-prec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.svd");
        std::fs::write(&path, tiny_model_text(3)).unwrap();
        for precision in [Precision::F32, Precision::Int8] {
            let reg = ModelRegistry::open_with_precision(&path, precision)
                .unwrap_or_else(|e| panic!("open at {precision}: {e}"));
            assert_eq!(reg.precision(), precision);
            // The smoke test already proved the tier scores a probability;
            // reloads keep the tier.
            assert_eq!(reg.reload().expect("reload keeps tier"), 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_bumps_version_and_old_arc_survives() {
        let dir = std::env::temp_dir().join(format!("svd-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.svd");
        std::fs::write(&path, tiny_model_text(1)).unwrap();
        let reg = ModelRegistry::open(&path).expect("initial load");
        let before = reg.current();
        assert_eq!(before.version, 1);

        std::fs::write(&path, tiny_model_text(2)).unwrap();
        let v = reg.reload().expect("reload");
        assert_eq!(v, 2);
        assert_eq!(reg.current().version, 2);
        // The pre-reload handle still works: in-flight batches finish on the
        // model they started with.
        assert_eq!(before.version, 1);
        let probs = before
            .detector
            .predict_batch(&[vec!["strcpy".to_string()]], 1);
        assert_eq!(probs.len(), 1);

        // A broken file fails the reload with a typed error but keeps
        // serving the old model.
        std::fs::write(&path, "not a model").unwrap();
        assert!(matches!(
            reg.reload().unwrap_err(),
            RegistryError::Invalid(PersistError::BadMagic)
        ));
        assert_eq!(reg.current().version, 2);

        // A deleted file is an I/O error, also non-fatal.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(reg.reload().unwrap_err(), RegistryError::Io(_)));
        assert_eq!(reg.current().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
