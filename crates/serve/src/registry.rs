//! The model registry: one warm [`Detector`] behind an atomically swappable
//! `Arc`, reloadable from disk while requests are in flight.
//!
//! `POST /reload` re-reads the model file and swaps the `Arc` under a short
//! write lock. Batch workers snapshot the `Arc` once per batch, so a batch
//! that started on the old model finishes on the old model — reloads never
//! tear a forward pass and never drop in-flight requests.

use sevuldet::{load_detector, Detector};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One loaded model generation.
#[derive(Debug)]
pub struct LoadedModel {
    /// The warm detector (scoring takes `&self`; workers clone per shard).
    pub detector: Detector,
    /// Monotonic generation number, starting at 1 for the initial load.
    pub version: u64,
}

/// A hot-reloadable model slot tied to a file path.
#[derive(Debug)]
pub struct ModelRegistry {
    path: PathBuf,
    current: RwLock<Arc<LoadedModel>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// Loads the initial model from `path`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the file is unreadable or not a valid
    /// saved detector.
    pub fn open(path: impl AsRef<Path>) -> Result<ModelRegistry, String> {
        let path = path.as_ref().to_path_buf();
        let detector = read_model(&path)?;
        Ok(ModelRegistry {
            path,
            current: RwLock::new(Arc::new(LoadedModel {
                detector,
                version: 1,
            })),
            next_version: AtomicU64::new(2),
        })
    }

    /// The currently served model. Callers hold the `Arc` for as long as
    /// they need the model; a concurrent reload swaps the slot without
    /// invalidating it.
    pub fn current(&self) -> Arc<LoadedModel> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Re-reads the model file and swaps it in, returning the new version.
    /// On any failure the previous model keeps serving.
    ///
    /// # Errors
    ///
    /// A human-readable message when the file is unreadable or invalid.
    pub fn reload(&self) -> Result<u64, String> {
        let detector = read_model(&self.path)?;
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let loaded = Arc::new(LoadedModel { detector, version });
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = loaded;
        Ok(version)
    }

    /// The path reloads are served from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn read_model(path: &Path) -> Result<Detector, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    load_detector(&text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet::{save_detector, Detector, GadgetSpec, ModelKind, TrainConfig};
    use sevuldet_dataset::{sard, SardConfig};

    fn tiny_model_text(seed: u64) -> String {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            seed,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 1,
            cnn_channels: 6,
            seed,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        save_detector(&mut det)
    }

    #[test]
    fn reload_bumps_version_and_old_arc_survives() {
        let dir = std::env::temp_dir().join(format!("svd-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.svd");
        std::fs::write(&path, tiny_model_text(1)).unwrap();
        let reg = ModelRegistry::open(&path).expect("initial load");
        let before = reg.current();
        assert_eq!(before.version, 1);

        std::fs::write(&path, tiny_model_text(2)).unwrap();
        let v = reg.reload().expect("reload");
        assert_eq!(v, 2);
        assert_eq!(reg.current().version, 2);
        // The pre-reload handle still works: in-flight batches finish on the
        // model they started with.
        assert_eq!(before.version, 1);
        let probs = before
            .detector
            .predict_batch(&[vec!["strcpy".to_string()]], 1);
        assert_eq!(probs.len(), 1);

        // A broken file fails the reload but keeps serving the old model.
        std::fs::write(&path, "not a model").unwrap();
        assert!(reg.reload().is_err());
        assert_eq!(reg.current().version, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
