#![deny(missing_docs)]

//! # sevuldet-serve
//!
//! A long-running, batched inference server for the SEVulDet detector — the
//! first step from the one-shot `sevuldet scan` CLI toward the ROADMAP's
//! production-serving north star. Std-only: HTTP/1.1 over
//! `std::net::TcpListener`, no external network or async dependencies.
//!
//! The subsystem, by module:
//!
//! * [`http`] — minimal HTTP/1.1 request parsing / response writing;
//! * [`batch`] — the micro-batching scheduler: a bounded MPSC queue whose
//!   workers coalesce up to `max_batch` pending scans into **one** batched
//!   forward pass ([`sevuldet::score_prepared`], the same entry point the
//!   CLI uses, so batching cannot change results);
//! * [`registry`] — named hot-reloadable model slots (`POST /reload` swaps
//!   an `Arc`, scoped to one model or broadcast; in-flight batches finish on
//!   the model they started with), with weighted A/B splits and per-request
//!   selection including `ensemble:a,b,c` voting;
//! * [`metrics`] — Prometheus counters/gauges/histograms for `GET /metrics`;
//! * [`server`] — routing, backpressure (429 on a full queue), per-request
//!   deadlines (504), and graceful drain, behind either I/O model;
//! * [`sys`] (Linux) — std-only `epoll`/`setsockopt`/`setrlimit` wrappers;
//! * `eventloop` (Linux, internal) — the epoll event loop: 10k concurrent
//!   connections on one thread, with slow-client hardening (408/413/431),
//!   keep-alive, pipelining, and partial-write resumption;
//! * [`balancer`] (Linux) — the fleet front end: round-robin plus
//!   consistent-hash routing of `/scan` across shard processes, with
//!   health-check-driven ejection;
//! * [`signal`] — SIGINT/SIGTERM → graceful-shutdown flag, std-only.
//!
//! ```no_run
//! use sevuldet_serve::{registry::ModelRegistry, server, server::ServeConfig};
//!
//! let registry = ModelRegistry::open("model.svd").expect("model loads");
//! let handle = server::start(ServeConfig::default(), registry).expect("binds");
//! println!("serving on http://{}", handle.addr());
//! // ... later:
//! handle.shutdown(); // drains the queue, then joins the workers
//! ```

#[cfg(target_os = "linux")]
pub mod balancer;
pub mod batch;
#[cfg(target_os = "linux")]
pub(crate) mod eventloop;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod signal;
#[cfg(target_os = "linux")]
pub mod sys;

pub use batch::{JobOutcome, JobQueue, ScanJob, SubmitError};
pub use metrics::Metrics;
pub use registry::{LoadedModel, ModelChoice, ModelRegistry, MultiRegistry};
pub use server::{start, IoModel, ServeConfig, ServerHandle};
