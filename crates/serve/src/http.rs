//! A deliberately small HTTP/1.1 layer over `std::io` — request parsing and
//! response writing, nothing else. The server speaks plain HTTP/1.1 with
//! `Content-Length` bodies and keep-alive; chunked transfer encoding is
//! rejected with `501`. Built on std only: the container this repository
//! grows in has no network access, so no HTTP crate can be pulled in.
//!
//! Two parsing front ends share the same validation rules:
//!
//! * [`read_request`] — blocking, over a `BufRead` (the thread-per-connection
//!   path);
//! * [`parse_request_buffer`] — incremental, over an in-memory byte buffer
//!   that a non-blocking event loop grows as bytes arrive; it answers
//!   "need more bytes" instead of blocking, so one slow client costs a
//!   buffer, not a thread.

use std::io::{BufRead, Write};

/// Upper bound on the request head (request line + headers). Exceeding it
/// answers `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body. Exceeding it answers `413`.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component only (no query parsing; the API takes JSON bodies).
    pub path: String,
    /// Raw header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default) or to close it.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly before sending anything.
    Closed,
}

/// A protocol-level failure with the status code to answer it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status to send (400/408/413/431/501).
    pub status: u16,
    /// Human-readable detail.
    pub msg: String,
}

impl HttpError {
    fn new(status: u16, msg: impl Into<String>) -> HttpError {
        HttpError {
            status,
            msg: msg.into(),
        }
    }
}

/// Reads one request. Read timeouts configured on the underlying socket
/// surface as `408`; oversized heads as `431` and oversized bodies as `413`.
///
/// # Errors
///
/// [`HttpError`] describes malformed or unsupported requests; the caller
/// should answer with `e.status` and close the connection.
pub fn read_request(reader: &mut impl BufRead) -> Result<ReadOutcome, HttpError> {
    let mut head = Vec::new();
    let mut line = Vec::new();
    // Request line.
    match read_crlf_line(reader, &mut line, MAX_HEAD_BYTES)? {
        0 => return Ok(ReadOutcome::Closed),
        _ => head.extend_from_slice(&line),
    }
    let request_line = String::from_utf8(line.clone())
        .map_err(|_| HttpError::new(400, "non-UTF-8 request line"))?;
    let (method, path) = parse_request_line(&request_line)?;
    // Headers.
    let mut headers = Vec::new();
    loop {
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = read_crlf_line(reader, &mut line, MAX_HEAD_BYTES)?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-headers"));
        }
        if line.is_empty() {
            break; // end of head
        }
        head.extend_from_slice(&line);
        let text =
            String::from_utf8(line.clone()).map_err(|_| HttpError::new(400, "non-UTF-8 header"))?;
        headers.push(parse_header_line(&text)?);
    }
    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let len = body_length(&req)?;
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| io_error(e, "reading body"))?;
    Ok(ReadOutcome::Request(Request { body, ..req }))
}

/// Splits `GET /path HTTP/1.1` into method and path, enforcing the version.
fn parse_request_line(request_line: &str) -> Result<(String, String), HttpError> {
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "unsupported HTTP version"));
    }
    Ok((method, path))
}

/// Splits `Name: value` into a lower-cased name and trimmed value.
fn parse_header_line(text: &str) -> Result<(String, String), HttpError> {
    let (name, value) = text
        .split_once(':')
        .ok_or_else(|| HttpError::new(400, "malformed header"))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Validates message framing and returns the declared body length.
///
/// RFC 7230 §3.3.2: multiple message-framing headers with differing values
/// are a request-smuggling vector — `Request::header` returns the first
/// match, so a proxy that honors the *last* would read a different body
/// boundary. Reject conflicts outright; identical repeats collapse.
///
/// # Errors
///
/// `400` for conflicting duplicates or an unparseable `Content-Length`,
/// `501` for chunked transfer encoding, `413` for an oversized body.
pub fn body_length(req: &Request) -> Result<usize, HttpError> {
    reject_conflicting_duplicates(req, "content-length")?;
    reject_conflicting_duplicates(req, "transfer-encoding")?;
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(501, "chunked transfer encoding unsupported"));
    }
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, "bad content-length"))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    Ok(len)
}

/// Outcome of one incremental parse attempt over a growing byte buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer does not yet hold a complete request; read more bytes and
    /// call again with the grown buffer.
    NeedMore,
    /// One complete request, and how many buffer bytes it consumed (the
    /// caller drains them; any remainder is the start of a pipelined next
    /// request).
    Complete {
        /// The parsed request.
        req: Request,
        /// Bytes of `buf` this request occupied.
        consumed: usize,
    },
}

/// Attempts to parse one complete request from the front of `buf` — the
/// event-loop counterpart of [`read_request`], sharing its validation rules.
/// Never blocks: an incomplete head or body answers
/// [`ParseStatus::NeedMore`].
///
/// # Errors
///
/// As [`read_request`], except timeouts (the caller owns the clock): `431`
/// when the head outgrows [`MAX_HEAD_BYTES`] (even before its end is seen,
/// so a slowloris client dribbling header bytes is cut off at the cap),
/// `413` for an oversized declared body, `400`/`501` for malformed or
/// unsupported framing.
pub fn parse_request_buffer(buf: &[u8]) -> Result<ParseStatus, HttpError> {
    let Some(body_start) = find_head_end(buf) else {
        // No blank line yet. A head that can no longer fit the cap is dead
        // regardless of what else arrives.
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        return Ok(ParseStatus::NeedMore);
    };
    if body_start > MAX_HEAD_BYTES {
        return Err(HttpError::new(431, "request head too large"));
    }
    let head = std::str::from_utf8(&buf[..body_start])
        .map_err(|_| HttpError::new(400, "non-UTF-8 request head"))?;
    let mut lines = head.lines().map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "malformed request line"))?;
    let (method, path) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the blank line ending the head
        }
        headers.push(parse_header_line(line)?);
    }
    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let len = body_length(&req)?;
    if buf.len() < body_start + len {
        return Ok(ParseStatus::NeedMore);
    }
    let body = buf[body_start..body_start + len].to_vec();
    Ok(ParseStatus::Complete {
        req: Request { body, ..req },
        consumed: body_start + len,
    })
}

/// Index just past the head-terminating blank line (`\r\n\r\n`, with a
/// bare-`\n` fallback matching [`read_crlf_line`]'s tolerance), or `None`
/// while the head is still incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Rejects a request that repeats the message-framing header `name` with
/// conflicting values (case-insensitive compare, since `Transfer-Encoding`
/// tokens are case-insensitive). Identical duplicates are tolerated.
fn reject_conflicting_duplicates(req: &Request, name: &str) -> Result<(), HttpError> {
    let mut values = req
        .headers
        .iter()
        .filter(|(k, _)| k == name)
        .map(|(_, v)| v);
    let Some(first) = values.next() else {
        return Ok(());
    };
    if values.any(|v| !v.eq_ignore_ascii_case(first)) {
        return Err(HttpError::new(400, format!("conflicting duplicate {name}")));
    }
    Ok(())
}

/// Reads one `\r\n`- (or `\n`-) terminated line into `line` (terminator
/// stripped), returning the raw byte count read (0 = EOF).
fn read_crlf_line(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, HttpError> {
    line.clear();
    let mut raw = Vec::new();
    let n = read_until_limited(reader, b'\n', &mut raw, cap)?;
    while raw.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        raw.pop();
    }
    *line = raw;
    Ok(n)
}

/// `read_until` with a size cap, mapping IO errors to HTTP ones.
fn read_until_limited(
    reader: &mut impl BufRead,
    delim: u8,
    buf: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, HttpError> {
    let mut total = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) => return Err(io_error(e, "reading request")),
        };
        if available.is_empty() {
            return Ok(total); // EOF
        }
        let (used, done) = match available.iter().position(|&b| b == delim) {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        buf.extend_from_slice(&available[..used]);
        reader.consume(used);
        total += used;
        if total > cap {
            return Err(HttpError::new(431, "request head too large"));
        }
        if done {
            return Ok(total);
        }
    }
}

fn io_error(e: std::io::Error, what: &str) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            HttpError::new(408, format!("timeout {what}"))
        }
        _ => HttpError::new(400, format!("{what}: {e}")),
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete response. `close` adds `Connection: close`.
///
/// # Errors
///
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, content_type, body, &[], close)
}

/// [`write_response`] with extra response headers (e.g. `X-Trace-Id`).
/// Header names and values must already be valid HTTP header text.
///
/// # Errors
///
/// Propagates socket write failures (the caller drops the connection).
pub fn write_response_with_headers(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
    close: bool,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let ReadOutcome::Request(req) = parse(raw).unwrap() else {
            panic!("expected request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ReadOutcome::Request(req) = parse(raw).unwrap() else {
            panic!("expected request");
        };
        assert!(!req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_reports_closed() {
        assert!(matches!(parse("").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn malformed_requests_get_400s() {
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
    }

    #[test]
    fn conflicting_framing_duplicates_get_400() {
        // Smuggling shape: a first-match parser reads 5 body bytes, a
        // last-match proxy would read 9999 — must die with 400.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 9999\r\n\r\nhello";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.msg.contains("content-length"));
        let raw = "POST / HTTP/1.1\r\nTransfer-Encoding: identity\r\n\
                   Transfer-Encoding: chunked\r\n\r\n";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.status, 400, "conflict beats the 501 chunked answer");
        assert!(err.msg.contains("transfer-encoding"));
    }

    #[test]
    fn identical_framing_duplicates_are_tolerated() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        let ReadOutcome::Request(req) = parse(raw).unwrap() else {
            panic!("expected request");
        };
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn oversized_heads_get_431_and_bodies_413() {
        let long_header = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES + 1)
        );
        assert_eq!(parse(&long_header).unwrap_err().status, 431);
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&big_body).unwrap_err().status, 413);
    }

    /// The buffer parser agrees with the blocking parser on complete
    /// requests and answers `NeedMore` at every byte-wise prefix.
    #[test]
    fn buffer_parser_is_incremental_and_agrees_with_blocking() {
        let raw = b"POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhelloPOST";
        let complete_len = raw.len() - 4; // the trailing "POST" is pipelined
        for cut in 0..complete_len {
            match parse_request_buffer(&raw[..cut]) {
                Ok(ParseStatus::NeedMore) => {}
                other => panic!("prefix of {cut} bytes parsed as {other:?}"),
            }
        }
        let Ok(ParseStatus::Complete { req, consumed }) = parse_request_buffer(raw) else {
            panic!("complete request did not parse");
        };
        assert_eq!(consumed, complete_len);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn buffer_parser_applies_the_same_caps_and_framing_rules() {
        // Head cap bites even before the head terminator arrives.
        let mut dribble = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        dribble.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1));
        assert_eq!(parse_request_buffer(&dribble).unwrap_err().status, 431);
        // Declared-oversized bodies die before any body byte arrives.
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse_request_buffer(big.as_bytes()).unwrap_err().status,
            413
        );
        // Conflicting framing duplicates are rejected identically.
        let smuggle = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 9\r\n\r\nhello";
        assert_eq!(parse_request_buffer(smuggle).unwrap_err().status, 400);
        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse_request_buffer(chunked).unwrap_err().status, 501);
        // Bare-LF heads are tolerated, like the blocking reader.
        let Ok(ParseStatus::Complete { req, .. }) =
            parse_request_buffer(b"GET /healthz HTTP/1.1\nHost: y\n\n")
        else {
            panic!("bare-LF request did not parse");
        };
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn responses_have_correct_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            b"{\"error\":\"full\"}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"full\"}"));
    }
}
