//! The epoll event loop: non-blocking accept/read/write with one
//! connection state machine per socket, replacing thread-per-connection as
//! the Linux serving path. One loop thread owns every connection — header
//! parsing, body accumulation, response write-out with partial-write
//! resumption — and hands complete requests to a [`Handler`]. Handlers
//! answer either synchronously (metrics, health, protocol errors) or
//! asynchronously through a [`Completer`] (scan jobs scored by the batch
//! workers, proxied fleet requests), which posts the finished response back
//! to the loop over a channel plus a wakeup byte on a socketpair.
//!
//! Why this shape: a blocking server pins one OS thread per open socket, so
//! 10k idle keep-alive connections cost 10k stacks and a scheduler meltdown.
//! Here 10k connections cost 10k small buffers in one thread; the compute
//! plane (the micro-batch workers) is untouched.
//!
//! ## Slow-client hardening
//!
//! * a per-connection **header deadline**: a client that opened a request
//!   but has not finished its head within the budget is answered `408` and
//!   closed — a slowloris fleet can pin at most one buffer each, never a
//!   thread, and only until the deadline;
//! * the head cap answers `431` as soon as the buffered head exceeds it,
//!   even before its terminator arrives;
//! * declared-oversized bodies answer `413` before any body byte is read;
//! * the read buffer is bounded: a client pipelining faster than it reads
//!   responses gets its socket-level backpressure, not unbounded memory.
//!
//! Requests on one connection are processed strictly in order (pipelined
//! requests queue in the read buffer until the previous response is fully
//! written), so responses can never interleave.

use crate::http::{
    parse_request_buffer, write_response_with_headers, ParseStatus, Request, MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
};
use crate::metrics::{CloseReason, ConnCounters};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use sevuldet::Json;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved token for the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Reserved token for the wakeup socketpair.
const WAKE_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Events fetched per `epoll_wait`.
const MAX_EVENTS: usize = 1024;
/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Read-buffer bound per connection: one maximal request plus a pipelined
/// head. Beyond it the loop stops reading until responses drain.
const RBUF_CAP: usize = MAX_HEAD_BYTES + MAX_BODY_BYTES + 16 * 1024;
/// `epoll_wait` timeout, which bounds header-deadline sweep latency.
const TICK_MS: i32 = 50;
/// How long a draining loop keeps *idle* keep-alive connections around so
/// an already-connected client can get one final explicit answer (a `503`
/// with `Connection: close`) instead of a silent EOF — matching what the
/// blocking path's still-attached handler threads do. Past the linger,
/// idle connections are closed; in-flight work gets the full drain grace.
const DRAIN_IDLE_LINGER: Duration = Duration::from_secs(1);

/// A response a handler produces (or relays), written to the client with
/// the same framing helper the blocking path uses.
#[derive(Debug)]
pub(crate) struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra response headers (e.g. the shard a proxied request ran on).
    pub extra: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json".to_string(),
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    /// A JSON `{"error": msg}` response.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            Json::obj(vec![("error", Json::str(msg))]).to_string(),
        )
    }
}

/// A finished asynchronous response, addressed to (connection, request).
pub(crate) struct Completion {
    token: u64,
    seq: u64,
    resp: Response,
}

/// Wakes the event loop from another thread (a worker finishing a batch, a
/// reload thread, shutdown). One byte on a non-blocking socketpair; a full
/// pipe means a wakeup is already pending, so the error is ignored.
#[derive(Clone)]
pub(crate) struct WakeHandle(Arc<UnixStream>);

impl WakeHandle {
    /// Wakes the loop.
    pub fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// The write half of an in-flight asynchronous request: whoever holds it
/// owes the connection exactly one response. Dropping it unanswered posts a
/// 503 instead — a vanished worker degrades to an error response, never to
/// a connection stuck forever.
pub(crate) struct Completer {
    inner: Option<(u64, u64, Sender<Completion>, WakeHandle)>,
}

impl Completer {
    /// Posts the response back to the loop and wakes it.
    pub fn complete(mut self, resp: Response) {
        if let Some((token, seq, tx, wake)) = self.inner.take() {
            let _ = tx.send(Completion { token, seq, resp });
            wake.wake();
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if let Some((token, seq, tx, wake)) = self.inner.take() {
            let _ = tx.send(Completion {
                token,
                seq,
                resp: Response::error(503, "request handler dropped"),
            });
            wake.wake();
        }
    }
}

/// Lazily hands a [`Completer`] to a handler that decides to answer
/// asynchronously; the loop observes whether it was taken.
pub(crate) struct CompleterSource<'a> {
    token: u64,
    seq: u64,
    tx: &'a Sender<Completion>,
    wake: &'a WakeHandle,
    taken: &'a mut bool,
}

impl CompleterSource<'_> {
    /// Takes the completer, committing the handler to answer later.
    pub fn take(self) -> Completer {
        *self.taken = true;
        Completer {
            inner: Some((self.token, self.seq, self.tx.clone(), self.wake.clone())),
        }
    }
}

/// What the event loop serves: routing and response accounting live behind
/// this, so the scan server and the fleet balancer share one loop.
pub(crate) trait Handler: Send + Sync + 'static {
    /// Handles one complete request. `Some` answers synchronously; `None`
    /// means the handler took the completer and will answer later.
    fn handle(&self, req: &Request, completer: CompleterSource<'_>) -> Option<Response>;
    /// Response-status accounting (protocol errors included — the loop
    /// reports every response it writes).
    fn count_response(&self, status: u16);
    /// The connection lifecycle counters to maintain.
    fn conn_counters(&self) -> &ConnCounters;
}

/// Event-loop tunables.
#[derive(Debug, Clone)]
pub(crate) struct LoopConfig {
    /// Budget for a client to deliver its complete request head (408 past
    /// it).
    pub header_deadline: Duration,
    /// Open-connection cap; connections beyond it are closed at accept.
    pub max_connections: usize,
    /// How long a draining loop waits for in-flight responses before
    /// giving up.
    pub drain_grace: Duration,
    /// Test hook: shrink accepted sockets' kernel buffers to force partial
    /// reads/writes.
    pub sock_buf_bytes: Option<usize>,
}

/// A running event loop.
pub(crate) struct EventLoopHandle {
    /// Wakes the loop (e.g. after flipping the drain flag).
    pub wake: WakeHandle,
    /// The loop thread, joined on shutdown.
    pub thread: JoinHandle<()>,
}

/// Spawns the loop thread. The loop runs until `draining` flips true and
/// every connection has been flushed and closed (or the drain grace
/// expires).
pub(crate) fn start_event_loop(
    listener: TcpListener,
    handler: Arc<dyn Handler>,
    draining: Arc<AtomicBool>,
    cfg: LoopConfig,
) -> std::io::Result<EventLoopHandle> {
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let wake = WakeHandle(Arc::new(wake_tx));

    let ep = Epoll::new()?;
    ep.add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)?;
    ep.add(wake_rx.as_raw_fd(), WAKE_TOKEN, EPOLLIN)?;
    let (tx, rx) = mpsc::channel();

    let mut lp = Loop {
        ep,
        listener: Some(listener),
        wake_rx,
        wake: wake.clone(),
        conns: HashMap::new(),
        deadlines: VecDeque::new(),
        completions_tx: tx,
        completions_rx: rx,
        handler,
        draining,
        drain_started: None,
        cfg,
        next_token: FIRST_CONN_TOKEN,
    };
    let thread = std::thread::Builder::new()
        .name("svd-eventloop".to_string())
        .spawn(move || lp.run())?;
    Ok(EventLoopHandle { wake, thread })
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    rbuf: Vec<u8>,
    /// Pending response bytes and the write cursor into them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Completed-request counter; completions are addressed to a seq so a
    /// stale one can never answer the wrong request.
    seq: u64,
    /// The seq of the in-flight asynchronous request, if any.
    awaiting: Option<u64>,
    /// Close once the in-flight async response is written.
    close_when_done: bool,
    /// Close as soon as `wbuf` flushes.
    close_after_write: bool,
    /// What to report when a server-initiated close happens.
    close_reason: CloseReason,
    /// The peer half-closed its writing side.
    read_closed: bool,
    /// Deadline for the in-progress request head, if one is mid-arrival.
    head_deadline: Option<Instant>,
    /// Currently registered epoll interest.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            seq: 0,
            awaiting: None,
            close_when_done: false,
            close_after_write: false,
            close_reason: CloseReason::ResponseComplete,
            read_closed: false,
            head_deadline: None,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn desired_interest(&self) -> u32 {
        let mut want = EPOLLRDHUP;
        if !self.read_closed && self.rbuf.len() < RBUF_CAP {
            want |= EPOLLIN;
        }
        if self.wpos < self.wbuf.len() {
            want |= EPOLLOUT;
        }
        want
    }
}

struct Loop {
    ep: Epoll,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    wake: WakeHandle,
    conns: HashMap<u64, Conn>,
    /// Header deadlines in registration order (the budget is constant, so
    /// registration order is deadline order): `(deadline, token, seq)`.
    /// Entries are lazily invalidated — the conn may have finished its head
    /// or died; the sweep re-checks before acting.
    deadlines: VecDeque<(Instant, u64, u64)>,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    handler: Arc<dyn Handler>,
    draining: Arc<AtomicBool>,
    drain_started: Option<Instant>,
    cfg: LoopConfig,
    next_token: u64,
}

impl Loop {
    fn run(&mut self) {
        let mut events = [EpollEvent::default(); MAX_EVENTS];
        loop {
            let n = self.ep.wait(&mut events, TICK_MS).unwrap_or_default();
            if n > 0 {
                // One span per wakeup-with-work: rides the PR 5 trace lanes
                // into `sevuldet_stage_duration_seconds{stage=...}`.
                let _s = sevuldet::trace::span!("serve.eventloop.wakeup");
                for ev in &events[..n] {
                    let (token, bits) = ({ ev.data }, { ev.events });
                    match token {
                        LISTENER_TOKEN => self.accept_ready(),
                        WAKE_TOKEN => self.drain_wake_bytes(),
                        _ => self.conn_ready(token, bits),
                    }
                }
                self.drain_completions();
            } else {
                self.drain_completions();
            }
            self.sweep_deadlines(Instant::now());
            if self.draining.load(Ordering::SeqCst) && self.drain_started.is_none() {
                self.begin_drain();
            }
            if let Some(started) = self.drain_started {
                if self.conns.is_empty() {
                    return;
                }
                if started.elapsed() > DRAIN_IDLE_LINGER {
                    // The courtesy window for idle keep-alive clients is
                    // over; only in-flight work may keep the loop alive.
                    let idle: Vec<u64> = self
                        .conns
                        .iter()
                        .filter(|(_, c)| {
                            c.awaiting.is_none() && c.wpos >= c.wbuf.len() && c.rbuf.is_empty()
                        })
                        .map(|(t, _)| *t)
                        .collect();
                    for t in idle {
                        self.close(t, CloseReason::Drain);
                    }
                    if self.conns.is_empty() {
                        return;
                    }
                }
                if started.elapsed() > self.cfg.drain_grace {
                    // Give up on stragglers, but keep the gauges honest.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for t in tokens {
                        self.close(t, CloseReason::Drain);
                    }
                    return;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let counters = self.handler.conn_counters();
                    counters.on_accept();
                    if self.conns.len() >= self.cfg.max_connections {
                        counters.on_close(CloseReason::OverCapacity);
                        continue; // stream drops => RST/FIN; cheapest shed
                    }
                    if stream.set_nonblocking(true).is_err() {
                        counters.on_close(CloseReason::IoError);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.cfg.sock_buf_bytes {
                        let _ = crate::sys::set_socket_buffers(stream.as_raw_fd(), bytes, bytes);
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .ep
                        .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
                        .is_err()
                    {
                        counters.on_close(CloseReason::IoError);
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drain_wake_bytes(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        if bits & EPOLLERR != 0 {
            self.close(token, CloseReason::IoError);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            self.readable(token);
        }
        if bits & EPOLLOUT != 0 {
            self.flush(token);
        }
    }

    fn readable(&mut self, token: u64) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_closed || conn.rbuf.len() >= RBUF_CAP {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if n < READ_CHUNK {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, CloseReason::IoError);
                    return;
                }
            }
        }
        self.progress(token);
    }

    /// Parses and dispatches as many buffered requests as current state
    /// allows: stops at an async dispatch (responses stay ordered), a
    /// scheduled close, or an incomplete request.
    fn progress(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.awaiting.is_some() || conn.close_after_write {
                break;
            }
            if conn.rbuf.is_empty() {
                conn.head_deadline = None;
                if conn.read_closed {
                    if conn.wpos < conn.wbuf.len() {
                        break; // finish writing first
                    }
                    self.close(token, CloseReason::PeerClosed);
                    return;
                }
                break;
            }
            match parse_request_buffer(&conn.rbuf) {
                Ok(ParseStatus::NeedMore) => {
                    if conn.read_closed {
                        // EOF mid-request: nothing to answer anyone with.
                        self.close(token, CloseReason::PeerClosed);
                        return;
                    }
                    if conn.head_deadline.is_none() {
                        let deadline = Instant::now() + self.cfg.header_deadline;
                        conn.head_deadline = Some(deadline);
                        self.deadlines.push_back((deadline, token, conn.seq));
                    }
                    break;
                }
                Err(e) => {
                    let status = e.status;
                    let resp = Response::error(status, &e.msg);
                    self.enqueue_response(token, resp, true, CloseReason::ProtocolError);
                    break;
                }
                Ok(ParseStatus::Complete { req, consumed }) => {
                    conn.rbuf.drain(..consumed);
                    conn.head_deadline = None;
                    conn.seq += 1;
                    let seq = conn.seq;
                    let keep_alive = req.keep_alive() && !self.draining.load(Ordering::SeqCst);
                    let mut taken = false;
                    let source = CompleterSource {
                        token,
                        seq,
                        tx: &self.completions_tx,
                        wake: &self.wake,
                        taken: &mut taken,
                    };
                    let handler = self.handler.clone();
                    let sync_resp = handler.handle(&req, source);
                    match sync_resp {
                        Some(resp) => {
                            self.enqueue_response(
                                token,
                                resp,
                                !keep_alive,
                                CloseReason::ResponseComplete,
                            );
                        }
                        None if taken => {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.awaiting = Some(seq);
                                conn.close_when_done = !keep_alive;
                            }
                            break;
                        }
                        None => {
                            // A handler bug; answer something rather than
                            // wedging the connection.
                            self.enqueue_response(
                                token,
                                Response::error(500, "handler produced no response"),
                                true,
                                CloseReason::ProtocolError,
                            );
                            break;
                        }
                    }
                }
            }
        }
        self.update_interest(token);
    }

    /// Serializes a response onto the connection's write buffer (trace id
    /// and `Connection: close` handling identical to the blocking path) and
    /// starts flushing it.
    fn enqueue_response(&mut self, token: u64, resp: Response, close: bool, reason: CloseReason) {
        self.handler.count_response(resp.status);
        let trace_id = sevuldet::trace::next_trace_id();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut extra: Vec<(&str, &str)> = vec![("X-Trace-Id", &trace_id)];
        for (k, v) in &resp.extra {
            extra.push((k.as_str(), v.as_str()));
        }
        // Writing to a Vec cannot fail.
        let _ = write_response_with_headers(
            &mut conn.wbuf,
            resp.status,
            &resp.content_type,
            &resp.body,
            &extra,
            close,
        );
        if close {
            conn.close_after_write = true;
            conn.close_reason = reason;
        }
        self.flush(token);
    }

    /// Writes as much buffered response as the socket accepts; a partial
    /// write leaves the cursor for EPOLLOUT to resume.
    fn flush(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.wpos >= conn.wbuf.len() {
                break;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close(token, CloseReason::IoError);
                    return;
                }
                Ok(n) => {
                    let conn = self.conns.get_mut(&token).expect("conn just seen");
                    conn.wpos += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token, CloseReason::IoError);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.close_after_write {
                let reason = conn.close_reason;
                self.close(token, reason);
                return;
            }
            if conn.read_closed && conn.rbuf.is_empty() && conn.awaiting.is_none() {
                self.close(token, CloseReason::PeerClosed);
                return;
            }
        }
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.desired_interest();
        if want != conn.interest {
            if self
                .ep
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close(token, CloseReason::IoError);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = want;
            }
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(c) = self.completions_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(&c.token) else {
                continue; // connection died while its job was in flight
            };
            if conn.awaiting != Some(c.seq) {
                continue; // stale completion for a superseded request
            }
            conn.awaiting = None;
            let close = conn.close_when_done || self.draining.load(Ordering::SeqCst);
            let reason = if self.draining.load(Ordering::SeqCst) {
                CloseReason::Drain
            } else {
                CloseReason::ResponseComplete
            };
            self.enqueue_response(c.token, c.resp, close, reason);
            // The response may unblock a pipelined next request.
            self.progress(c.token);
        }
    }

    fn sweep_deadlines(&mut self, now: Instant) {
        while let Some(&(deadline, token, seq)) = self.deadlines.front() {
            if deadline > now {
                break;
            }
            self.deadlines.pop_front();
            let still_waiting = self.conns.get(&token).is_some_and(|conn| {
                conn.seq == seq && conn.head_deadline.is_some_and(|d| d <= now)
            });
            if still_waiting {
                self.enqueue_response(
                    token,
                    Response::error(408, "timeout reading request head"),
                    true,
                    CloseReason::HeaderTimeout,
                );
            }
        }
    }

    fn begin_drain(&mut self) {
        self.drain_started = Some(Instant::now());
        // Stop accepting: dropping the listener closes its fd, which also
        // deregisters it from epoll.
        self.listener.take();
        // Existing connections are kept: in-flight requests finish and
        // answer, and idle keep-alive clients get the linger window to send
        // one last request (which will be answered with `Connection:
        // close`, or `503` for scans). Responses written from here on all
        // close, because `keep_alive` consults the drain flag.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if conn.awaiting.is_some() {
                conn.close_when_done = true; // finish, answer, then close
            } else if conn.wpos < conn.wbuf.len() {
                conn.close_after_write = true;
                conn.close_reason = CloseReason::Drain;
            }
        }
    }

    fn close(&mut self, token: u64, reason: CloseReason) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.ep.delete(conn.stream.as_raw_fd());
            self.handler.conn_counters().on_close(reason);
        }
    }
}
