//! Fleet integration suite: a real balancer fronting real in-process shard
//! servers over TCP. Pins down consistent-hash scan routing (and the cache
//! affinity it buys over round-robin), round-robin for stateless routes,
//! reload broadcast, health-check ejection with readmission, and the
//! balancer's own health/metrics endpoints.
#![cfg(target_os = "linux")]

use sevuldet::{save_detector, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::balancer::{start as start_balancer, BalancerConfig, BalancerHandle};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn model_text() -> &'static str {
    static M: OnceLock<String> = OnceLock::new();
    M.get_or_init(|| {
        let samples = sard::generate(&SardConfig {
            per_category: 5,
            seed: 42,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            seed: 42,
            ..TrainConfig::quick()
        };
        save_detector(&mut Detector::train(&corpus, ModelKind::SevulDet, &cfg))
    })
}

fn write_model(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-fleet-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, model_text()).expect("write model");
    path
}

/// Starts one shard server with fleet identity `index/total`, optionally on
/// a specific address.
fn start_shard(tag: &str, index: u32, total: u32, addr: Option<String>) -> ServerHandle {
    let path = write_model(tag);
    let registry = ModelRegistry::open(&path).expect("model loads");
    start(
        ServeConfig {
            addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_string()),
            workers: 1,
            shard: Some((index, total)),
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("shard binds")
}

/// Starts `n` shards plus a balancer fronting them.
fn start_fleet(tag: &str, n: u32) -> (BalancerHandle, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|i| start_shard(&format!("{tag}-{i}"), i, n, None))
        .collect();
    let balancer = start_balancer(BalancerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        health_interval: Duration::from_millis(100),
        ..BalancerConfig::default()
    })
    .expect("balancer binds");
    (balancer, shards)
}

/// One request through a fresh connection; returns `(status, body, raw)` —
/// the raw response keeps the routing headers inspectable.
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body, raw)
}

fn shard_header(raw: &str) -> Option<String> {
    raw.lines()
        .find_map(|l| l.strip_prefix("X-Sevuldet-Shard: "))
        .map(|v| v.trim().to_string())
}

fn scan_body(i: usize) -> String {
    // Distinct parseable sources so each hashes to its own ring point.
    let source = format!(
        "void process_{i}(char *dest, char *data) {{\n    int n = atoi(data);\n    strncpy(dest, data, n + {i});\n}}"
    );
    Json::obj(vec![
        ("source", Json::str(source)),
        ("name", Json::str(format!("f{i}.c"))),
    ])
    .to_string()
}

/// Scans route by source-digest hash: the same source always lands on the
/// same shard; distinct sources spread; stateless routes round-robin.
#[test]
fn scans_route_by_hash_stateless_routes_round_robin() {
    let (balancer, shards) = start_fleet("routing", 3);
    let addr = balancer.addr();

    // Repeats of one source pin to one shard, and the response is marked
    // as hash-routed.
    let body = scan_body(0);
    let mut homes = std::collections::BTreeSet::new();
    for _ in 0..6 {
        let (status, resp, raw) = request_raw(addr, "POST", "/scan", &body, "");
        assert_eq!(status, 200, "{resp}");
        assert!(raw.contains("X-Sevuldet-Route: hash"), "{raw}");
        homes.insert(shard_header(&raw).expect("shard header"));
    }
    assert_eq!(
        homes.len(),
        1,
        "one source must pin to one shard: {homes:?}"
    );

    // Enough distinct sources touch more than one shard.
    let mut spread = std::collections::BTreeSet::new();
    for i in 1..16 {
        let (status, resp, raw) = request_raw(addr, "POST", "/scan", &scan_body(i), "");
        assert_eq!(status, 200, "{resp}");
        spread.insert(shard_header(&raw).expect("shard header"));
    }
    assert!(spread.len() > 1, "distinct sources must spread: {spread:?}");

    // A stateless shard route (`GET /metrics` is balancer-local, so use a
    // shard passthrough path) cycles: consecutive requests visit every
    // healthy shard. `/healthz` is balancer-local too, so probe a 404 path
    // — it forwards round-robin and still carries the shard header.
    let mut cycle = std::collections::BTreeSet::new();
    for _ in 0..6 {
        let (status, _, raw) = request_raw(addr, "GET", "/shard-poke", "", "");
        assert_eq!(status, 404);
        cycle.insert(shard_header(&raw).expect("shard header"));
    }
    assert_eq!(
        cycle.len(),
        3,
        "round-robin must cycle all shards: {cycle:?}"
    );

    // Balancer-local endpoints: fleet health and routing counters.
    let (status, health, _) = request_raw(addr, "GET", "/healthz", "", "");
    assert_eq!(status, 200);
    let doc = Json::parse(&health).expect("health json");
    assert_eq!(doc.get("healthy_shards").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("total_shards").unwrap().as_f64(), Some(3.0));

    let (status, metrics, _) = request_raw(addr, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    for needle in [
        "sevuldet_balancer_routed_total",
        "mode=\"hash\"",
        "mode=\"rr\"",
        "sevuldet_balancer_ejections_total",
        "sevuldet_balancer_shard_healthy",
        "sevuldet_open_connections",
    ] {
        assert!(metrics.contains(needle), "missing `{needle}`:\n{metrics}");
    }

    balancer.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// `POST /reload` broadcasts: every shard reloads, the aggregate reports
/// each one, and every shard's model version bumps.
#[test]
fn reload_broadcasts_to_every_shard() {
    let (balancer, shards) = start_fleet("broadcast", 3);
    let (status, body, _) = request_raw(balancer.addr(), "POST", "/reload", "", "");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("aggregate json");
    assert_eq!(doc.get("reloaded").unwrap().as_bool(), Some(true));

    for shard in &shards {
        let (status, health, _) = request_raw(shard.addr(), "GET", "/healthz", "", "");
        assert_eq!(status, 200);
        let doc = Json::parse(&health).expect("shard health");
        assert_eq!(
            doc.get("model_version").unwrap().as_f64(),
            Some(2.0),
            "shard missed the broadcast: {health}"
        );
    }
    balancer.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// A dead shard is ejected after consecutive probe failures, its traffic
/// redistributes, and it is readmitted once a server appears on its
/// address again.
#[test]
fn dead_shard_is_ejected_and_readmitted() {
    // Reserve a port for the "dead" shard by binding and dropping.
    let reserved = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let dead_addr = reserved.local_addr().unwrap().to_string();
    drop(reserved);

    let live = start_shard("eject-live", 0, 2, None);
    let balancer = start_balancer(BalancerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: vec![live.addr().to_string(), dead_addr.clone()],
        health_interval: Duration::from_millis(100),
        fail_after: 2,
        recover_after: 2,
        ..BalancerConfig::default()
    })
    .expect("balancer binds");
    let addr = balancer.addr();

    // Wait for the ejection, visible in fleet health.
    let ejected = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(50));
        let (_, health, _) = request_raw(addr, "GET", "/healthz", "", "");
        let doc = Json::parse(&health).expect("health json");
        doc.get("healthy_shards").unwrap().as_f64() == Some(1.0)
    });
    assert!(ejected, "dead shard never ejected");

    // All scan traffic — including sources that hash to the dead shard —
    // now lands on the live one.
    for i in 0..8 {
        let (status, resp, raw) = request_raw(addr, "POST", "/scan", &scan_body(i), "");
        assert_eq!(status, 200, "{resp}");
        assert_eq!(
            shard_header(&raw).as_deref(),
            Some(live.addr().to_string().as_str()),
            "traffic must avoid the ejected shard"
        );
    }
    let (_, metrics, _) = request_raw(addr, "GET", "/metrics", "", "");
    assert!(
        metrics.contains(&format!(
            "sevuldet_balancer_ejections_total{{shard=\"{dead_addr}\"}} 1"
        )),
        "{metrics}"
    );

    // A server comes up on the dead address: after `recover_after` probes
    // the shard is back in rotation.
    let revived = start_shard("eject-revived", 1, 2, Some(dead_addr.clone()));
    let readmitted = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(50));
        let (_, health, _) = request_raw(addr, "GET", "/healthz", "", "");
        let doc = Json::parse(&health).expect("health json");
        doc.get("healthy_shards").unwrap().as_f64() == Some(2.0)
    });
    assert!(readmitted, "revived shard never readmitted");

    // Round-robin traffic reaches it again.
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..8 {
        let (_, _, raw) = request_raw(addr, "GET", "/poke", "", "");
        if let Some(s) = shard_header(&raw) {
            seen.insert(s);
        }
    }
    assert!(
        seen.contains(&dead_addr),
        "readmitted shard must take traffic again: {seen:?}"
    );

    balancer.shutdown();
    live.shutdown();
    revived.shutdown();
}

/// Extracts the value of a single-sample (no-label) counter from a
/// Prometheus exposition.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing:\n{metrics}"))
}

/// A connection reset on a *fresh* (non-pooled) connection must fail over
/// to another shard, not surface as a balancer 502. The broken shard here
/// accepts every connection and immediately closes it — the balancer's
/// first write/read on a brand-new connection fails, which before PR 9 was
/// a client-visible error.
#[test]
fn fresh_connection_reset_fails_over_to_healthy_shard() {
    let live = start_shard("reset-live", 0, 2, None);

    // The "shard" that accepts and instantly hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let fake_addr = listener.local_addr().unwrap().to_string();
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let acceptor = std::thread::spawn(move || {
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((conn, _)) => drop(conn),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });

    // Probes stay out of the way (huge interval, huge fail_after): only
    // *request* outcomes drive this test, so every hit on the broken shard
    // exercises the fresh-connection failover path.
    let balancer = start_balancer(BalancerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: vec![live.addr().to_string(), fake_addr],
        health_interval: Duration::from_secs(3600),
        fail_after: 10_000,
        ..BalancerConfig::default()
    })
    .expect("balancer binds");

    // Enough distinct sources that some must hash to the broken shard.
    for i in 0..12 {
        let (status, resp, raw) = request_raw(balancer.addr(), "POST", "/scan", &scan_body(i), "");
        assert_eq!(status, 200, "scan {i} must fail over, got: {resp}");
        assert_eq!(
            shard_header(&raw).as_deref(),
            Some(live.addr().to_string().as_str()),
            "every answer must come from the live shard"
        );
    }
    let (_, metrics, _) = request_raw(balancer.addr(), "GET", "/metrics", "", "");
    assert!(
        metric_value(&metrics, "sevuldet_balancer_failovers_total ") > 0.0,
        "failovers must be counted:\n{metrics}"
    );

    stop.store(true, Ordering::Relaxed);
    acceptor.join().unwrap();
    balancer.shutdown();
    live.shutdown();
}

/// The acceptance criterion behind hash routing: on a repeated corpus,
/// consistent-hash routing produces a higher `sevuldet_query` cache hit
/// rate than round-robin spraying, because every repeat of a source lands
/// on the shard that already prepared it.
#[test]
fn hash_routing_beats_round_robin_on_cache_hits() {
    // 9 distinct sources (not divisible by the shard count, so a naive
    // round-robin never realigns a source with its previous shard) scanned
    // 3 times each. The query-cache counters are process-global, so the
    // two phases run sequentially and are compared by their deltas.
    const SOURCES: usize = 9;
    const REPEATS: usize = 3;
    let (balancer, shards) = start_fleet("affinity", 4);
    let shard_addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr()).collect();

    // Phase A — the baseline a cache-blind balancer would produce: spray
    // the corpus round-robin directly across the shards.
    let before = sevuldet_query::stats::counters();
    let mut k = 0;
    for _ in 0..REPEATS {
        for i in 0..SOURCES {
            let (status, resp, _) = request_raw(
                shard_addrs[k % shard_addrs.len()],
                "POST",
                "/scan",
                &scan_body(i),
                "",
            );
            assert_eq!(status, 200, "{resp}");
            k += 1;
        }
    }
    let mid = sevuldet_query::stats::counters();
    let rr_hits = mid.hits() - before.hits();

    // Phase B — the same corpus through the balancer's consistent hash.
    for _ in 0..REPEATS {
        for i in 0..SOURCES {
            let (status, resp, raw) =
                request_raw(balancer.addr(), "POST", "/scan", &scan_body(i), "");
            assert_eq!(status, 200, "{resp}");
            assert!(raw.contains("X-Sevuldet-Route: hash"), "{raw}");
        }
    }
    let after = sevuldet_query::stats::counters();
    let hash_hits = after.hits() - mid.hits();

    // Hash routing must land every repeat on a warm shard: at least one
    // hit per repeat beyond the first, for every source. Round-robin with
    // 9 sources over 4 shards realigns nothing.
    assert!(
        hash_hits >= (SOURCES * (REPEATS - 1)) as u64,
        "hash routing should hit a warm cache on every repeat: {hash_hits}"
    );
    assert!(
        hash_hits > rr_hits,
        "consistent hashing must beat round-robin on cache hits \
         (hash {hash_hits} vs rr {rr_hits})"
    );

    balancer.shutdown();
    for s in shards {
        s.shutdown();
    }
}
