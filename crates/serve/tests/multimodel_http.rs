//! TCP-level integration suite for the multi-model plane: named registry
//! slots, per-request selection, weighted A/B splits, ensemble voting, the
//! explainability API, and scoped hot reloads.
//!
//! The acceptance criteria pinned down here:
//! * an unknown `model` name answers a typed 404 listing the available
//!   models;
//! * `{"model": "bgru", "explain": true}` returns that model's score plus
//!   a per-token relevance heatmap;
//! * a 90/10 split routes deterministically by source digest (the test
//!   recomputes the pick from the digest and the responses agree);
//! * an ensemble of models returns per-member scores and a vote, and its
//!   response is byte-stable across `inner_jobs` settings;
//! * a scoped `/reload` of a corrupt candidate fails that slot alone —
//!   the other model reloads and serves untouched;
//! * `explain` on the f32/int8 tiers matches the f64 reference heatmap
//!   instead of coming back silently empty, and a model with no attention
//!   reports `explain_unavailable`.

use sevuldet::{save_detector, sha256_hex, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::MultiRegistry;
use sevuldet_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

fn train(kind: ModelKind, seed: u64) -> String {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        seed,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed,
        ..TrainConfig::quick()
    };
    save_detector(&mut Detector::train(&corpus, kind, &cfg))
}

/// Model file text per architecture, trained once per test binary.
fn model_text(kind: ModelKind) -> &'static str {
    static CNN_A: OnceLock<String> = OnceLock::new();
    static CNN_B: OnceLock<String> = OnceLock::new();
    static BGRU: OnceLock<String> = OnceLock::new();
    static PLAIN: OnceLock<String> = OnceLock::new();
    match kind {
        ModelKind::SevulDet => CNN_A.get_or_init(|| train(kind, 42)),
        ModelKind::SevulDetFixed => CNN_B.get_or_init(|| train(ModelKind::SevulDet, 7)),
        ModelKind::Bgru => BGRU.get_or_init(|| train(kind, 42)),
        ModelKind::CnnPlain => PLAIN.get_or_init(|| train(kind, 42)),
        other => panic!("no cached model for {other:?}"),
    }
}

/// Writes the given models into a fresh per-test temp dir, returning
/// `(dir, [(name, path)])`.
fn write_models(tag: &str, models: &[(&str, ModelKind)]) -> (PathBuf, Vec<(String, PathBuf)>) {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-multimodel-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let specs = models
        .iter()
        .map(|(name, kind)| {
            let path = dir.join(format!("{name}.svd"));
            std::fs::write(&path, model_text(*kind)).expect("write model");
            (name.to_string(), path)
        })
        .collect();
    (dir, specs)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn serve_multi(
    tag: &str,
    models: &[(&str, ModelKind)],
    cfg: ServeConfig,
) -> (ServerHandle, PathBuf) {
    let (dir, specs) = write_models(tag, models);
    let registry = MultiRegistry::open(&specs, sevuldet::Precision::F64).expect("models load");
    let handle = start(cfg, registry).expect("server binds");
    (handle, dir)
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scan_body(source: &str, extra: &str) -> String {
    let src = Json::str(source).to_string();
    format!("{{\"name\": \"t.c\", \"source\": {src}{extra}}}")
}

#[test]
fn unknown_model_name_is_a_typed_404() {
    let (handle, dir) = serve_multi(
        "unknown",
        &[("champion", ModelKind::SevulDet), ("bgru", ModelKind::Bgru)],
        test_config(),
    );
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/scan",
        &scan_body(LEAKY, ", \"model\": \"ghost\""),
    );
    assert_eq!(status, 404, "body: {body}");
    let doc = Json::parse(&body).expect("json 404 body");
    assert_eq!(doc.get("model").and_then(Json::as_str), Some("ghost"));
    assert!(doc
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("unknown model")));
    let available: Vec<&str> = doc
        .get("available")
        .and_then(Json::as_array)
        .expect("available list")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(available, vec!["champion", "bgru"]);
    // An unknown ensemble member 404s the same way, naming the member.
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/scan",
        &scan_body(LEAKY, ", \"model\": \"ensemble:champion,ghost\""),
    );
    assert_eq!(status, 404);
    let doc = Json::parse(&body).expect("json 404 body");
    assert_eq!(doc.get("model").and_then(Json::as_str), Some("ghost"));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Pulls the first finding out of a scan report body.
fn first_finding(body: &str) -> Json {
    let doc = Json::parse(body).expect("report json");
    let findings = doc
        .get("findings")
        .and_then(Json::as_array)
        .expect("findings array");
    assert!(!findings.is_empty(), "no findings in: {body}");
    findings[0].clone()
}

#[test]
fn named_model_scan_with_explain_returns_heatmap() {
    let (handle, dir) = serve_multi(
        "explain",
        &[("cnn", ModelKind::SevulDet), ("bgru", ModelKind::Bgru)],
        test_config(),
    );
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/scan",
        &scan_body(LEAKY, ", \"model\": \"bgru\", \"explain\": true"),
    );
    assert_eq!(status, 200, "body: {body}");
    let doc = Json::parse(&body).expect("report json");
    assert_eq!(doc.get("model").and_then(Json::as_str), Some("bgru"));
    let finding = first_finding(&body);
    assert!(finding.get("score").and_then(Json::as_f64).is_some());
    let explain = finding.get("explain").expect("explain object");
    assert_eq!(explain.get("status").and_then(Json::as_str), Some("ok"));
    let tokens = explain
        .get("tokens")
        .and_then(Json::as_array)
        .expect("token heatmap");
    assert!(!tokens.is_empty());
    for t in tokens {
        assert!(t.get("token").and_then(Json::as_str).is_some());
        assert!(t.get("position").and_then(Json::as_f64).is_some());
        let pct = t.get("percent").and_then(Json::as_f64).expect("percent");
        assert!((0.0..=100.0).contains(&pct));
    }
    assert_eq!(
        tokens[0].get("percent").and_then(Json::as_f64),
        Some(100.0),
        "heatmap is normalized to its top token"
    );

    // Off by default: the same scan without the flag has no explain key,
    // and no model key when the model is not named — byte-stability with
    // the single-model era.
    let (status, body) = request(handle.addr(), "POST", "/scan", &scan_body(LEAKY, ""));
    assert_eq!(status, 200);
    assert!(!body.contains("\"explain\""), "body: {body}");
    assert!(!body.contains("\"model\""), "body: {body}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn split_routes_deterministically_by_source_digest() {
    let (dir, specs) = write_models(
        "split",
        &[
            ("champion", ModelKind::SevulDet),
            ("challenger", ModelKind::SevulDetFixed),
        ],
    );
    let mut registry = MultiRegistry::open(&specs, sevuldet::Precision::F64).expect("models load");
    registry
        .set_split(&[("champion".to_string(), 90), ("challenger".to_string(), 10)])
        .expect("valid split");
    let handle = start(test_config(), registry).expect("server binds");

    // The pick is pinned to the source digest: recompute it here exactly as
    // the registry does and require every response to carry that label.
    let expected = |source: &str| -> &'static str {
        let digest = sha256_hex(source.as_bytes());
        let point = u64::from_str_radix(&digest[..16], 16).unwrap();
        if point % 100 < 90 {
            "champion"
        } else {
            "challenger"
        }
    };
    let sources: Vec<String> = (0..12)
        .map(|i| format!("void f{i}(char *p, char *q) {{ strcpy(p, q); }}"))
        .collect();
    let mut seen_challenger = false;
    for source in &sources {
        let want = expected(source);
        seen_challenger |= want == "challenger";
        for _ in 0..2 {
            let (status, body) = request(handle.addr(), "POST", "/scan", &scan_body(source, ""));
            assert_eq!(status, 200, "body: {body}");
            let doc = Json::parse(&body).expect("report json");
            assert_eq!(
                doc.get("model").and_then(Json::as_str),
                Some(want),
                "source {source:?} must always route to {want}"
            );
        }
    }
    // 12 fixed sources are enough for the 10% arm to appear at least once
    // (sources were not chosen adversarially; this guards the weights).
    assert!(seen_challenger, "challenger never picked — split inert?");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ensemble_returns_member_scores_and_is_byte_stable_across_jobs() {
    let models: &[(&str, ModelKind)] = &[
        ("a", ModelKind::SevulDet),
        ("b", ModelKind::SevulDetFixed),
        ("c", ModelKind::Bgru),
    ];
    let body_at_jobs = |jobs: usize| {
        let cfg = ServeConfig {
            inner_jobs: jobs,
            ..test_config()
        };
        let (handle, dir) = serve_multi("ensemble", models, cfg);
        let (status, body) = request(
            handle.addr(),
            "POST",
            "/scan",
            &scan_body(LEAKY, ", \"model\": \"ensemble:a,b,c\""),
        );
        assert_eq!(status, 200, "body: {body}");
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        body
    };
    let body = body_at_jobs(1);
    let doc = Json::parse(&body).expect("report json");
    assert_eq!(
        doc.get("model").and_then(Json::as_str),
        Some("ensemble:a,b,c")
    );
    let finding = first_finding(&body);
    let members = finding
        .get("members")
        .and_then(Json::as_array)
        .expect("members array");
    assert_eq!(members.len(), 3);
    let names: Vec<&str> = members
        .iter()
        .filter_map(|m| m.get("model").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["a", "b", "c"]);
    let mut scores = Vec::new();
    let mut votes = 0;
    for m in members {
        scores.push(m.get("score").and_then(Json::as_f64).expect("member score"));
        if m.get("flagged")
            .and_then(Json::as_bool)
            .expect("member vote")
        {
            votes += 1;
        }
    }
    // The ensemble score is the member mean; the vote is a strict majority.
    let score = finding.get("score").and_then(Json::as_f64).expect("score");
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    assert!((score - mean).abs() < 1e-12, "score {score} vs mean {mean}");
    assert_eq!(
        finding.get("flagged").and_then(Json::as_bool),
        Some(2 * votes > members.len()),
        "vote must be the strict majority of member flags"
    );
    // Byte-stability: inner-batch sharding cannot change the response.
    assert_eq!(body, body_at_jobs(4), "ensemble body changed with --jobs");
}

#[test]
fn scoped_reload_of_corrupt_candidate_isolates_that_model() {
    let (handle, dir) = serve_multi(
        "scoped-reload",
        &[
            ("champion", ModelKind::SevulDet),
            ("challenger", ModelKind::SevulDetFixed),
        ],
        test_config(),
    );
    // Corrupt only the challenger's file on disk.
    std::fs::write(dir.join("challenger.svd"), "not a model").expect("corrupt file");

    // Scoped reload of the corrupt candidate: 422, and the slot keeps its
    // old model serving.
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/reload",
        "{\"model\": \"challenger\"}",
    );
    assert_eq!(status, 422, "body: {body}");
    let doc = Json::parse(&body).expect("reload json");
    assert_eq!(doc.get("reloaded").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("model").and_then(Json::as_str), Some("challenger"));
    assert!(doc.get("error").and_then(Json::as_str).is_some());

    // The challenger still scores on its pre-corruption model.
    let (status, _) = request(
        handle.addr(),
        "POST",
        "/scan",
        &scan_body(LEAKY, ", \"model\": \"challenger\""),
    );
    assert_eq!(status, 200);

    // The champion reloads independently of its broken neighbour.
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/reload",
        "{\"model\": \"champion\"}",
    );
    assert_eq!(status, 200, "body: {body}");
    let doc = Json::parse(&body).expect("reload json");
    assert_eq!(doc.get("reloaded").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("version").and_then(Json::as_f64), Some(2.0));

    // /healthz reports both slots' versions: champion moved, challenger
    // pinned at its old generation.
    let (status, body) = request(handle.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("healthz json");
    let models = doc.get("models").expect("per-model versions");
    assert_eq!(models.get("champion").and_then(Json::as_f64), Some(2.0));
    assert_eq!(models.get("challenger").and_then(Json::as_f64), Some(1.0));

    // A broadcast reload reports each slot's own outcome (champion ok,
    // challenger still corrupt) under 422.
    let (status, body) = request(handle.addr(), "POST", "/reload", "");
    assert_eq!(status, 422, "body: {body}");
    let doc = Json::parse(&body).expect("reload json");
    assert_eq!(doc.get("reloaded").and_then(Json::as_bool), Some(false));
    let entries = doc
        .get("models")
        .and_then(Json::as_array)
        .expect("per-model results");
    assert_eq!(entries.len(), 2);
    assert_eq!(
        entries[0].get("reloaded").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        entries[1].get("reloaded").and_then(Json::as_bool),
        Some(false)
    );

    // An unknown scope is the same typed 404 as a scan's.
    let (status, body) = request(handle.addr(), "POST", "/reload", "{\"model\": \"ghost\"}");
    assert_eq!(status, 404);
    assert!(body.contains("unknown model"), "body: {body}");

    // Per-model metrics carry both slots' versions.
    let (status, metrics) = request(handle.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("sevuldet_model_version{model=\"champion\"} 3"));
    assert!(metrics.contains("sevuldet_model_version{model=\"challenger\"} 1"));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fast_tier_explain_matches_the_f64_reference_over_http() {
    let explain_tokens_at = |precision: sevuldet::Precision| {
        let (dir, specs) = write_models("fast-explain", &[("m", ModelKind::SevulDet)]);
        let registry = MultiRegistry::open(&specs, precision).expect("models load");
        let handle = start(test_config(), registry).expect("server binds");
        let (status, body) = request(
            handle.addr(),
            "POST",
            "/scan",
            &scan_body(LEAKY, ", \"explain\": true"),
        );
        assert_eq!(status, 200, "at {precision}: {body}");
        let finding = first_finding(&body);
        let explain = finding.get("explain").expect("explain object").clone();
        assert_eq!(
            explain.get("status").and_then(Json::as_str),
            Some("ok"),
            "fast tier must fall back to the reference path, not go empty"
        );
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        explain.get("tokens").expect("token heatmap").to_string()
    };
    let reference = explain_tokens_at(sevuldet::Precision::F64);
    for precision in [sevuldet::Precision::F32, sevuldet::Precision::Int8] {
        assert_eq!(
            explain_tokens_at(precision),
            reference,
            "heatmap at {precision} drifted from the f64 reference"
        );
    }
}

#[test]
fn attention_free_model_reports_explain_unavailable() {
    let (handle, dir) = serve_multi(
        "plain-cnn",
        &[("plain", ModelKind::CnnPlain)],
        test_config(),
    );
    let (status, body) = request(
        handle.addr(),
        "POST",
        "/scan",
        &scan_body(LEAKY, ", \"explain\": true"),
    );
    assert_eq!(status, 200, "body: {body}");
    let finding = first_finding(&body);
    let explain = finding.get("explain").expect("explain object");
    assert_eq!(
        explain.get("status").and_then(Json::as_str),
        Some("explain_unavailable"),
        "a model with no relevance signal must say so, not return an empty heatmap"
    );
    assert_eq!(
        explain
            .get("tokens")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0)
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
