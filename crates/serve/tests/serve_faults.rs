//! Fault-injection suite for the serve path: panic isolation inside batch
//! workers, reload rejection of bad candidate models, and health reporting.
//!
//! The invariants pinned down here:
//! * a poison request (one whose forward pass panics) is answered 500 while
//!   every other request in the same batch still gets its report —
//!   byte-identical to solo scoring — and the worker keeps serving;
//! * `POST /reload` rejects a missing, truncated, bit-flipped, or
//!   wrong-architecture candidate with 422 and a typed reason, the old
//!   model keeps serving unchanged, and `/metrics` counts the rejection;
//! * `/healthz` reports readiness, and flips to 503 once draining begins.
//!
//! Poison inputs are simulated with the `worker_forward` failpoint
//! (`panic@NAME` fires only when the batch contains a request with that
//! name), so no real model-crashing input is needed.

use sevuldet::integrity;
use sevuldet::{
    faults, save_detector, score_source, Detector, GadgetSpec, Json, ModelKind, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

fn detector(seed: u64) -> Detector {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        seed,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed,
        ..TrainConfig::quick()
    };
    Detector::train(&corpus, ModelKind::SevulDet, &cfg)
}

fn model_text() -> &'static str {
    static CELL: OnceLock<String> = OnceLock::new();
    CELL.get_or_init(|| save_detector(&mut detector(42)))
}

fn write_model(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-faults-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, model_text()).expect("write model");
    path
}

fn serve(tag: &str, cfg: ServeConfig) -> (ServerHandle, std::path::PathBuf) {
    let path = write_model(tag);
    let registry = ModelRegistry::open(&path).expect("model loads");
    let handle = start(cfg, registry).expect("server binds");
    (handle, path)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scan_body(source: &str, name: &str) -> String {
    Json::obj(vec![
        ("source", Json::str(source)),
        ("name", Json::str(name)),
    ])
    .to_string()
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing in:\n{metrics}"))
}

#[test]
fn poison_request_is_isolated_from_its_batch() {
    // One slow worker so a burst of requests coalesces into a single batch.
    let (handle, _path) = serve(
        "poison",
        ServeConfig {
            workers: 1,
            max_batch: 8,
            queue_cap: 16,
            batch_delay: Duration::from_millis(300),
            ..test_config()
        },
    );
    let addr = handle.addr();

    // The failpoint panics the forward pass of any batch whose request
    // names include the poison marker — the bisection then corners it.
    faults::arm("worker_forward=panic@POISON-REQUEST");

    let reference = score_source(&detector(42), LEAKY, 1).expect("scans");

    // Occupy the worker with a throwaway request, then fire the poison and
    // three clean requests while it sleeps: all four land in one batch.
    let warmup =
        std::thread::spawn(move || request(addr, "POST", "/scan", &scan_body(LEAKY, "warmup")));
    std::thread::sleep(Duration::from_millis(100));
    let burst: Vec<_> = (0..4)
        .map(|i| {
            let name = if i == 0 {
                "POISON-REQUEST".to_string()
            } else {
                format!("clean-{i}")
            };
            std::thread::spawn(move || {
                let body = Json::obj(vec![
                    ("source", Json::str(LEAKY)),
                    ("name", Json::str(&name)),
                ])
                .to_string();
                (name, request(addr, "POST", "/scan", &body))
            })
        })
        .collect();
    assert_eq!(warmup.join().unwrap().0, 200);
    let mut poison_status = 0;
    for t in burst {
        let (name, (status, body)) = t.join().expect("client thread");
        if name == "POISON-REQUEST" {
            poison_status = status;
            assert!(body.contains("isolated"), "{body}");
        } else {
            assert_eq!(status, 200, "clean batch-mate failed: {body}");
            assert_eq!(
                body,
                reference.to_json(&name).to_string(),
                "batch-mate result differs from solo scoring"
            );
        }
    }
    assert_eq!(poison_status, 500, "poison request must be answered 500");

    // The worker survived the panic and keeps serving.
    faults::disarm("worker_forward");
    let (status, body) = request(addr, "POST", "/scan", &scan_body(LEAKY, "after"));
    assert_eq!(status, 200, "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    let panics = metric_value(&metrics, "sevuldet_worker_panics_total");
    // Bisecting the poison out of a multi-request batch catches more than
    // one panic (full batch, then halves); >= 2 proves isolation actually
    // split a batch rather than the poison arriving alone.
    assert!(panics >= 2.0, "expected bisection panics, saw {panics}");
    handle.shutdown();
}

#[test]
fn reload_rejects_bad_candidates_and_keeps_serving() {
    let (handle, path) = serve("badreload", test_config());
    let addr = handle.addr();
    let baseline = request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"));
    assert_eq!(baseline.0, 200);
    let good = model_text().to_string();
    let mut rejections = 0.0;

    // Missing file: I/O error.
    std::fs::remove_file(&path).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("reading model file"), "{body}");
    rejections += 1.0;

    // Truncated file: the footer is gone.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("footer missing"), "{body}");
    rejections += 1.0;

    // Bit flip mid-payload: the checksum catches it.
    let mut bytes = good.clone().into_bytes();
    let i = bytes.len() / 2;
    bytes[i] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("checksum mismatch"), "{body}");
    rejections += 1.0;

    // Wrong-architecture parameters: rewrite the config line to claim a
    // different embedding width, then re-seal so the CRC passes and the
    // structural shape check is what fires.
    let payload = integrity::unseal(&good).expect("sealed model");
    let tampered: String = payload
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("config ") {
                let mut fields: Vec<String> = rest.split_whitespace().map(String::from).collect();
                fields[0] = "999".to_string(); // embed_dim the params cannot fit
                format!("config {}\n", fields.join(" "))
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(&path, integrity::seal(tampered)).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(
        status, 422,
        "wrong-architecture candidate must be rejected: {body}"
    );
    rejections += 1.0;

    // Through all four failures the old model kept serving, byte-identical.
    let after = request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"));
    assert_eq!((after.0, &after.1), (200, &baseline.1));
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(
        metric_value(&metrics, "sevuldet_reload_failures_total"),
        rejections
    );
    assert_eq!(metric_value(&metrics, "sevuldet_model_version"), 1.0);
    assert_eq!(metric_value(&metrics, "sevuldet_model_reloads_total"), 0.0);

    // Restoring a good file reloads cleanly: rejection is not sticky.
    std::fs::write(&path, &good).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    handle.shutdown();
}

#[test]
fn healthz_reports_readiness_and_flips_to_draining() {
    let (handle, _path) = serve("healthz", test_config());
    let addr = handle.addr();
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("healthz is JSON");
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(doc.get("model_version").unwrap().as_f64(), Some(1.0));

    // A keep-alive connection opened before shutdown observes the draining
    // state: the accept loop is closed but existing connections still get
    // routed, and /healthz answers 503 so load balancers stop sending work.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // First request (and its framed response) proves the connection has a
    // handler thread attached before the accept loop is told to stop.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("send pre-shutdown request");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("header byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("content length");
    let mut first_body = vec![0u8; len];
    stream.read_exact(&mut first_body).expect("first body");
    handle.shutdown();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("send on pre-shutdown connection");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("draining"), "{body}");
}
