//! Subprocess fault-injection suite: kills the real `sevuldet` binary at
//! injected and randomized points and asserts the recovery invariants.
//!
//! * a trainer aborted at any batch boundary, resumed with `--resume`,
//!   produces a final model file **byte-identical** (sha256) to an
//!   uninterrupted run — across `--jobs` values and whether or not any
//!   checkpoint had been written before the kill;
//! * a crash in the middle of writing a model file never leaves a torn
//!   file: either the old bytes or nothing, thanks to the
//!   temp-file + fsync + rename protocol;
//! * a SIGKILL at a wall-clock-random point is recoverable the same way;
//! * CLI failures exit with typed codes (usage 2, I/O 3, corruption 4).
//!
//! Failpoints are armed through the `SEVULDET_FAILPOINTS` environment
//! variable (see `sevuldet::faults`), so the child process aborts at an
//! exact program point — a deterministic stand-in for `kill -9`.

use sevuldet::sha256_hex;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const BIN: &str = env!("CARGO_BIN_EXE_sevuldet");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-fi-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs `sevuldet train` with tiny-but-real settings (75 gadgets, 2
/// epochs, ~10 batch boundaries). Returns the process exit success.
fn train(dir: &Path, jobs: usize, resume: bool, failpoints: Option<&str>) -> bool {
    let mut cmd = Command::new(BIN);
    cmd.arg("train")
        .args(["--per-category", "2", "--epochs", "2", "--seed", "9"])
        .args(["--jobs", &jobs.to_string()])
        .arg("--out")
        .arg(dir.join("model.svd"))
        .arg("--checkpoint-dir")
        .arg(dir.join("ckpt"))
        .args(["--checkpoint-every", "1"]);
    if resume {
        cmd.arg("--resume");
    }
    match failpoints {
        Some(spec) => cmd.env("SEVULDET_FAILPOINTS", spec),
        None => cmd.env_remove("SEVULDET_FAILPOINTS"),
    };
    let out = cmd.output().expect("spawn sevuldet train");
    out.status.success()
}

fn sha_of(path: &Path) -> String {
    sha256_hex(&std::fs::read(path).expect("read model file"))
}

/// The uninterrupted run every recovery must reproduce, trained once.
fn reference_sha() -> &'static str {
    static CELL: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let dir = tmpdir("reference");
        assert!(train(&dir, 1, false, None), "reference train failed");
        let sha = sha_of(&dir.join("model.svd"));
        std::fs::remove_dir_all(&dir).ok();
        sha
    })
}

#[test]
fn abort_at_batch_boundary_then_resume_is_byte_identical() {
    // Boundary 1 dies before the first checkpoint ever lands (resume from
    // scratch); 4 dies mid-first-epoch with three checkpoints behind it;
    // 7 dies inside the second epoch. Kill and resume at mixed --jobs
    // values: the fingerprint deliberately excludes the thread count.
    for (nth, kill_jobs, resume_jobs) in [(1, 1, 1), (4, 2, 1), (7, 1, 2)] {
        let dir = tmpdir(&format!("boundary-{nth}"));
        let spec = format!("batch_boundary:{nth}=abort");
        assert!(
            !train(&dir, kill_jobs, false, Some(&spec)),
            "failpoint {spec} must abort the trainer"
        );
        assert!(
            !dir.join("model.svd").exists(),
            "a killed trainer must not have produced a model"
        );
        assert!(
            train(&dir, resume_jobs, true, None),
            "resume after {spec} failed"
        );
        assert_eq!(
            sha_of(&dir.join("model.svd")),
            reference_sha(),
            "resumed model (killed at boundary {nth}, jobs {kill_jobs}->{resume_jobs}) \
             differs from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn crash_mid_write_never_leaves_a_torn_file() {
    // First: crash while writing the very first checkpoint — the final
    // checkpoint path must not exist (only an orphaned temp file may).
    let dir = tmpdir("midwrite");
    assert!(
        !train(&dir, 1, false, Some("save_midwrite=abort")),
        "save_midwrite must abort the trainer"
    );
    let ckpt = dir.join("ckpt").join("checkpoint.svc");
    assert!(
        !ckpt.exists(),
        "crash mid-write left a (possibly torn) checkpoint at the final path"
    );
    assert!(!dir.join("model.svd").exists());

    // Second: with a good model already on disk, a crash while writing its
    // replacement leaves the old bytes untouched — rename is the commit.
    assert!(train(&dir, 1, false, None), "clean train failed");
    let model = dir.join("model.svd");
    let before = sha_of(&model);
    assert_eq!(before, reference_sha());
    // Retrain over it without checkpointing, so the first (and only)
    // atomic_write — the one the failpoint aborts — is the model save.
    let status = Command::new(BIN)
        .arg("train")
        .args(["--per-category", "2", "--epochs", "2", "--seed", "9"])
        .arg("--out")
        .arg(&model)
        .env("SEVULDET_FAILPOINTS", "save_midwrite=abort")
        .output()
        .expect("spawn sevuldet train");
    assert!(!status.status.success(), "mid-write abort expected");
    assert_eq!(
        sha_of(&model),
        before,
        "a crashed overwrite corrupted the existing model file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_at_a_random_point_is_recoverable() {
    let dir = tmpdir("sigkill");
    let mut child = Command::new(BIN)
        .arg("train")
        .args(["--per-category", "2", "--epochs", "2", "--seed", "9"])
        .arg("--out")
        .arg(dir.join("model.svd"))
        .arg("--checkpoint-dir")
        .arg(dir.join("ckpt"))
        .args(["--checkpoint-every", "1"])
        .env_remove("SEVULDET_FAILPOINTS")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn sevuldet train");
    // A wall-clock-random delay somewhere inside (or after) the ~1s run:
    // the kill may land mid-epoch, mid-write, or after completion — every
    // outcome must be recoverable.
    let jitter = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
        % 900;
    std::thread::sleep(Duration::from_millis(50 + jitter));
    let _ = child.kill();
    let _ = child.wait();

    assert!(train(&dir, 1, true, None), "resume after SIGKILL failed");
    assert_eq!(
        sha_of(&dir.join("model.svd")),
        reference_sha(),
        "post-SIGKILL resume diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_failures_exit_with_typed_codes() {
    let dir = tmpdir("exitcodes");
    let code = |args: &[&str]| {
        Command::new(BIN)
            .args(args)
            .output()
            .expect("spawn sevuldet")
            .status
            .code()
    };
    // Usage errors: 2.
    assert_eq!(code(&["train"]), Some(2), "train without --out");
    assert_eq!(
        code(&["scan", "--model", "m.svd"]),
        Some(2),
        "scan without files"
    );
    assert_eq!(
        code(&["train", "--out", "x", "--resume"]),
        Some(2),
        "--resume without --checkpoint-dir"
    );
    // Missing files: 3.
    let c_file = dir.join("ok.c");
    std::fs::write(&c_file, "int main() { return 0; }").unwrap();
    let missing = dir.join("nope.svd").display().to_string();
    assert_eq!(
        code(&["scan", c_file.to_str().unwrap(), "--model", &missing]),
        Some(3),
        "scan with missing model"
    );
    // Corrupt model: 4.
    let corrupt = dir.join("corrupt.svd");
    std::fs::write(&corrupt, "sevuldet-detector v2\nkind sevuldet\n").unwrap();
    assert_eq!(
        code(&[
            "scan",
            c_file.to_str().unwrap(),
            "--model",
            corrupt.to_str().unwrap()
        ]),
        Some(4),
        "scan with corrupt model"
    );
    // Serve with a missing model fails before binding: 3. With a good
    // model but an unbindable address: 5.
    assert_eq!(
        code(&["serve", "--model", &missing]),
        Some(3),
        "serve with missing model is an I/O failure"
    );
    let model = dir.join("model.svd");
    let trained = Command::new(BIN)
        .arg("train")
        .args(["--per-category", "2", "--epochs", "1", "--seed", "9"])
        .arg("--out")
        .arg(&model)
        .env_remove("SEVULDET_FAILPOINTS")
        .output()
        .expect("spawn sevuldet train");
    assert!(trained.status.success());
    assert_eq!(
        code(&[
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--addr",
            "999.999.999.999:0"
        ]),
        Some(5),
        "serve on an unbindable address"
    );
    std::fs::remove_dir_all(&dir).ok();
}
