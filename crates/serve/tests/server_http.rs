//! TCP-level integration suite for `sevuldet serve`: every test drives a
//! real server over real sockets with a real (tiny) trained model.
//!
//! The acceptance criteria pinned down here:
//! * concurrent POST /scan responses are byte-identical to the library
//!   `score_source` path (which is also what the CLI prints with `--json`);
//! * `/metrics` exposes request counts, latency histograms, batch sizes,
//!   and queue depth in Prometheus text format;
//! * `POST /reload` swaps models without dropping in-flight requests;
//! * a full queue answers 429 instead of blocking;
//! * expired deadlines answer 504;
//! * graceful shutdown drains queued jobs before the workers exit.

use sevuldet::{save_detector, score_source, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

const CLEAN: &str = "int three() { return 3; }";

/// Trains the shared tiny detector once per test binary.
fn detector(seed: u64) -> Detector {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        seed,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed,
        ..TrainConfig::quick()
    };
    Detector::train(&corpus, ModelKind::SevulDet, &cfg)
}

fn model_text(seed: u64) -> &'static str {
    static A: OnceLock<String> = OnceLock::new();
    static B: OnceLock<String> = OnceLock::new();
    let cell = if seed == 42 { &A } else { &B };
    cell.get_or_init(|| save_detector(&mut detector(seed)))
}

/// A fresh model file in a per-test temp directory.
fn write_model(tag: &str, seed: u64) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-serve-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, model_text(seed)).expect("write model");
    path
}

fn serve(tag: &str, cfg: ServeConfig) -> (ServerHandle, std::path::PathBuf) {
    let path = write_model(tag, 42);
    let registry = ModelRegistry::open(&path).expect("model loads");
    let handle = start(cfg, registry).expect("server binds");
    (handle, path)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, full raw
/// response (status line + headers + body).
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// [`request_raw`] reduced to the pieces most tests want.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> (u16, String) {
    let raw = request_raw(addr, method, path, body, extra_headers);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scan_body(source: &str, name: &str) -> String {
    Json::obj(vec![
        ("source", Json::str(source)),
        ("name", Json::str(name)),
    ])
    .to_string()
}

#[test]
fn concurrent_scans_match_cli_scoring_byte_for_byte() {
    let (handle, _path) = serve(
        "concurrent",
        ServeConfig {
            workers: 2,
            max_batch: 4,
            ..test_config()
        },
    );
    let addr = handle.addr();

    // The reference: the same library call the CLI's `scan --json` makes.
    let det = detector(42);
    let expected_leaky = score_source(&det, LEAKY, 1)
        .expect("scans")
        .to_json("leaky.c")
        .to_string();
    let expected_clean = score_source(&det, CLEAN, 1)
        .expect("scans")
        .to_json("clean.c")
        .to_string();

    let workers: Vec<_> = (0..8)
        .map(|i| {
            let (expected, source, name) = if i % 2 == 0 {
                (expected_leaky.clone(), LEAKY, "leaky.c")
            } else {
                (expected_clean.clone(), CLEAN, "clean.c")
            };
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let (status, body) =
                        request(addr, "POST", "/scan", &scan_body(source, name), "");
                    assert_eq!(status, 200, "body: {body}");
                    assert_eq!(body, expected, "batched serving changed a result");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // The clean source came back `scanned` with zero findings — the
    // structured "no findings" shape, not an error.
    let parsed = Json::parse(&expected_clean).unwrap();
    assert_eq!(parsed.get("status").unwrap().as_str(), Some("scanned"));
    assert_eq!(parsed.get("gadgets").unwrap().as_f64(), Some(0.0));

    handle.shutdown();
}

#[test]
fn metrics_expose_requests_latency_batches_and_queue() {
    let (handle, _path) = serve("metrics", test_config());
    let addr = handle.addr();
    for _ in 0..3 {
        let (status, _) = request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"), "");
        assert_eq!(status, 200);
    }
    let (status, _) = request(addr, "GET", "/healthz", "", "");
    assert_eq!(status, 200);
    let (status, text) = request(addr, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    for needle in [
        "sevuldet_requests_total{endpoint=\"scan\"} 3",
        "sevuldet_requests_total{endpoint=\"healthz\"} 1",
        "sevuldet_responses_total{code=\"200\"}",
        "sevuldet_scan_latency_seconds_bucket{le=\"+Inf\"} 3",
        "sevuldet_scan_latency_seconds_count 3",
        "sevuldet_batch_size_bucket",
        "sevuldet_batch_size_count",
        "sevuldet_queue_depth 0",
        "sevuldet_model_reloads_total 0",
        "sevuldet_model_version 1",
        "sevuldet_rejected_total{reason=\"queue_full\"} 0",
        // Per-stage duration histograms, fed by the trace observer even
        // though span *recording* stays off in serve.
        "sevuldet_stage_duration_seconds_bucket{stage=\"serve.forward\",le=\"+Inf\"}",
        "sevuldet_stage_duration_seconds_count{stage=\"serve.queue_wait\"}",
        "sevuldet_stage_duration_seconds_count{stage=\"serve.batch_assembly\"}",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    handle.shutdown();
}

#[test]
fn every_response_carries_a_unique_trace_id() {
    let (handle, _path) = serve("traceid", test_config());
    let addr = handle.addr();

    let trace_id = |raw: &str| -> String {
        raw.lines()
            .find_map(|l| l.strip_prefix("X-Trace-Id: "))
            .unwrap_or_else(|| panic!("no X-Trace-Id header in:\n{raw}"))
            .trim()
            .to_string()
    };

    let a = trace_id(&request_raw(
        addr,
        "POST",
        "/scan",
        &scan_body(LEAKY, "x.c"),
        "",
    ));
    let b = trace_id(&request_raw(addr, "GET", "/healthz", "", ""));
    // Even protocol errors are tagged.
    let c = trace_id(&request_raw(addr, "PATCH", "/scan", "", ""));

    for id in [&a, &b, &c] {
        // Shape: `xxxxxxxx-xxxxxx` (process fingerprint + sequence).
        let (fp, seq) = id.split_once('-').expect("fingerprint-seq shape");
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()), "bad id {id}");
        assert!(seq.chars().all(|c| c.is_ascii_hexdigit()), "bad id {id}");
    }
    assert_ne!(a, b);
    assert_ne!(b, c);
    assert_ne!(a, c);

    handle.shutdown();
}

#[test]
fn reload_swaps_model_without_dropping_requests() {
    let (handle, path) = serve("reload", test_config());
    let addr = handle.addr();

    let before = request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"), "");
    assert_eq!(before.0, 200);

    // Swap the file for a model trained with a different seed and keep
    // scanning from other threads while the reload happens.
    std::fs::write(&path, model_text(7)).expect("swap model file");
    let in_flight: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, body) =
                        request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"), "");
                    assert_eq!(status, 200, "in-flight scan dropped during reload: {body}");
                }
            })
        })
        .collect();
    let (status, body) = request(addr, "POST", "/reload", "", "");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("reloaded").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    for t in in_flight {
        t.join()
            .expect("no in-flight request may fail during reload");
    }

    // Post-reload scans score with the new model.
    let expected_new = score_source(&detector(7), LEAKY, 1)
        .expect("scans")
        .to_json("x.c")
        .to_string();
    let after = request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"), "");
    assert_eq!(after.0, 200);
    assert_eq!(after.1, expected_new, "reload did not take effect");
    assert_ne!(after.1, before.1, "seed-7 model should score differently");

    let (_, metrics) = request(addr, "GET", "/metrics", "", "");
    assert!(metrics.contains("sevuldet_model_reloads_total 1"));
    assert!(metrics.contains("sevuldet_model_version 2"));
    handle.shutdown();
}

#[test]
fn full_queue_answers_429_not_blocking() {
    let (handle, _path) = serve(
        "backpressure",
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_cap: 1,
            batch_delay: Duration::from_millis(400),
            ..test_config()
        },
    );
    let addr = handle.addr();

    // Establish every connection first (each conn thread parks in
    // read_request), then fire all requests at once. The submissions land
    // within one 400ms batch window, so the single slow worker can absorb
    // at most one job plus the one queue slot — the rest must bounce with
    // 429 immediately rather than block.
    let body = scan_body(CLEAN, "c");
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut streams: Vec<TcpStream> = (0..8)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // conn threads parked
    for s in &mut streams {
        s.write_all(req.as_bytes()).expect("send");
    }
    let (mut saw_200, mut saw_429) = (0, 0);
    for mut s in streams {
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("no status line in {raw:?}"));
        match status {
            200 => saw_200 += 1,
            429 => {
                assert!(raw.contains("queue full"), "{raw}");
                saw_429 += 1;
            }
            other => panic!("unexpected status {other}: {raw}"),
        }
    }
    assert!(saw_200 > 0, "the accepted request still completes");
    assert!(saw_429 > 0, "a full queue must reject with 429");
    let (_, metrics) = request(addr, "GET", "/metrics", "", "");
    assert!(metrics.contains("sevuldet_rejected_total{reason=\"queue_full\"}"));
    handle.shutdown();
}

#[test]
fn expired_deadline_answers_504() {
    let (handle, _path) = serve(
        "deadline",
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_cap: 8,
            batch_delay: Duration::from_millis(300),
            ..test_config()
        },
    );
    let addr = handle.addr();
    // First request is popped immediately (passes its deadline check) and
    // holds the worker for ~300ms; the second's 100ms deadline expires
    // while it waits in the queue.
    let first =
        std::thread::spawn(move || request(addr, "POST", "/scan", &scan_body(CLEAN, "a"), "").0);
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = request(
        addr,
        "POST",
        "/scan",
        &scan_body(CLEAN, "b"),
        "X-Deadline-Ms: 100\r\n",
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline"), "{body}");
    assert_eq!(first.join().unwrap(), 200);
    let (_, metrics) = request(addr, "GET", "/metrics", "", "");
    assert!(metrics.contains("sevuldet_rejected_total{reason=\"deadline\"} 1"));
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_jobs() {
    let (handle, _path) = serve(
        "drain",
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_cap: 8,
            batch_delay: Duration::from_millis(200),
            ..test_config()
        },
    );
    let addr = handle.addr();
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || request(addr, "POST", "/scan", &scan_body(LEAKY, "x.c"), ""))
        })
        .collect();
    // Let the requests reach the queue, then drain.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    for c in clients {
        let (status, body) = c.join().expect("client");
        assert_eq!(status, 200, "queued job dropped during drain: {body}");
    }
}

#[test]
fn malformed_requests_get_structured_errors() {
    let (handle, _path) = serve("malformed", test_config());
    let addr = handle.addr();

    let (status, body) = request(addr, "POST", "/scan", "{not json", "");
    assert_eq!(status, 400);
    assert!(body.contains("invalid JSON"), "{body}");

    let (status, body) = request(addr, "POST", "/scan", "{\"nosource\":1}", "");
    assert_eq!(status, 400);
    assert!(body.contains("source"), "{body}");

    let (status, body) = request(
        addr,
        "POST",
        "/scan",
        &scan_body("int main( {{{ not C", "bad.c"),
        "",
    );
    assert_eq!(status, 422);
    let doc = Json::parse(&body).expect("error body is JSON");
    assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));

    let (status, _) = request(addr, "GET", "/nowhere", "", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/scan", "", "");
    assert_eq!(status, 405);
    handle.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let (handle, _path) = serve("keepalive", test_config());
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..2 {
        let body = scan_body(CLEAN, "c");
        let req = format!(
            "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        // Read headers + exact content length so the connection stays usable.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("header byte");
            buf.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&buf);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .expect("content length");
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("body");
    }
    handle.shutdown();
}
