//! Fleet chaos harness: a real balancer fronting real *shard processes*
//! (spawned from the `sevuldet` binary), driven through failpoints and
//! `kill -9`. Every scenario asserts the fleet's fault-tolerance contract:
//! each client gets a byte-identical correct response or a single bounded,
//! typed error — never a hang, never a mangled answer.
//!
//! Scenarios:
//! * shard murdered mid-burst (SIGKILL) — zero client-visible failures;
//! * frozen shard (accepts, never answers) — passive breaker ejection
//!   while the shard's own `/healthz` still reports healthy;
//! * slow shard — hedged requests cut the latency tail;
//! * rolling restart of every shard under load — availability stays 100%;
//! * exhausted `X-Deadline-Ms` — one typed local 504, retries never stack
//!   past the client's budget;
//! * (env-gated) long randomized kill schedule from a seeded generator.
//!
//! Set `SEVULDET_CHAOS_LONG=1` for the long randomized run (CI runs it on a
//! schedule, not on every push); `SEVULDET_CHAOS_SEED=N` reseeds it.
#![cfg(target_os = "linux")]

use sevuldet::{save_detector, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::balancer::{start as start_balancer, BalancerConfig, HedgeAfter};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_sevuldet");

/// Chaos tests spawn process fleets and assert on wall-clock timeouts;
/// running them concurrently starves each other of CPU and flakes. One at
/// a time.
fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One tiny deterministic model shared by every shard process (identical
/// bytes ⇒ identical answers, which is what byte-level comparison pins).
fn model_path() -> &'static Path {
    static P: OnceLock<PathBuf> = OnceLock::new();
    P.get_or_init(|| {
        let samples = sard::generate(&SardConfig {
            per_category: 5,
            seed: 42,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            seed: 42,
            ..TrainConfig::quick()
        };
        let text = save_detector(&mut Detector::train(&corpus, ModelKind::SevulDet, &cfg));
        let dir = std::env::temp_dir().join(format!("svd-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.svd");
        std::fs::write(&path, text).expect("write model");
        path
    })
}

/// Reserves a free port by binding and dropping; the shard process then
/// binds the same address (std listeners set `SO_REUSEADDR`, so respawning
/// on a port with lingering `TIME_WAIT` sockets also works).
fn reserve_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = l.local_addr().unwrap().to_string();
    drop(l);
    addr
}

/// A shard subprocess. Dropping it SIGKILLs and reaps the child, so a
/// panicking test never leaks serve processes.
struct ShardProc {
    child: Child,
    addr: String,
}

impl ShardProc {
    /// Spawns `sevuldet serve` on `addr`, optionally with failpoints armed
    /// via the environment (the child parses `SEVULDET_FAILPOINTS` itself).
    fn spawn(addr: &str, failpoints: Option<&str>) -> ShardProc {
        let mut cmd = Command::new(BIN);
        cmd.args([
            "serve",
            "--model",
            model_path().to_str().unwrap(),
            "--addr",
            addr,
            "--workers",
            "1",
            "--io",
            "eventloop",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
        if let Some(fp) = failpoints {
            cmd.env("SEVULDET_FAILPOINTS", fp);
        }
        let child = cmd.spawn().expect("spawn shard process");
        ShardProc {
            child,
            addr: addr.to_string(),
        }
    }

    /// Spawns and waits until `/healthz` answers 200.
    fn spawn_ready(addr: &str, failpoints: Option<&str>) -> ShardProc {
        let mut shard = ShardProc::spawn(addr, failpoints);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some((200, _, _)) = try_request(&shard.addr, "GET", "/healthz", "", "") {
                return shard;
            }
            if let Ok(Some(status)) = shard.child.try_wait() {
                panic!("shard on {addr} exited during startup: {status}");
            }
            assert!(
                Instant::now() < deadline,
                "shard on {addr} never became healthy"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// `kill -9`: no drain, no goodbye — the scenario the balancer must
    /// absorb without a client noticing.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// One request over a fresh connection; `None` when the connection itself
/// fails (used while polling for readiness).
fn try_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body, raw))
}

/// Like [`try_request`] but panics on transport failure — for requests the
/// contract says must be answered.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> (u16, String, String) {
    try_request(addr, method, path, body, extra_headers)
        .unwrap_or_else(|| panic!("no response from {addr} for {method} {path}"))
}

fn shard_header(raw: &str) -> Option<String> {
    raw.lines()
        .find_map(|l| l.strip_prefix("X-Sevuldet-Shard: "))
        .map(|v| v.trim().to_string())
}

fn scan_body(i: usize) -> String {
    let source = format!(
        "void process_{i}(char *dest, char *data) {{\n    int n = atoi(data);\n    strncpy(dest, data, n + {i});\n}}"
    );
    Json::obj(vec![
        ("source", Json::str(source)),
        ("name", Json::str(format!("f{i}.c"))),
    ])
    .to_string()
}

/// Value of an unlabelled counter/gauge in a Prometheus exposition.
fn metric_value(metrics: &str, name_and_space: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name_and_space)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name_and_space}` missing:\n{metrics}"))
}

fn healthy_shards(balancer_addr: &str) -> f64 {
    let (_, health, _) = request(balancer_addr, "GET", "/healthz", "", "");
    Json::parse(&health)
        .expect("health json")
        .get("healthy_shards")
        .and_then(|v| v.as_f64())
        .unwrap_or(-1.0)
}

fn wait_for_healthy(balancer_addr: &str, want: f64, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while healthy_shards(balancer_addr) != want {
        assert!(
            Instant::now() < deadline,
            "fleet never reached {want} healthy shards"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Byte-identical reference answers, captured while the fleet is calm.
fn reference_answers(balancer_addr: &str, sources: usize) -> Vec<String> {
    (0..sources)
        .map(|i| {
            let (status, body, _) = request(balancer_addr, "POST", "/scan", &scan_body(i), "");
            assert_eq!(status, 200, "reference scan {i} failed: {body}");
            body
        })
        .collect()
}

/// Shared tally for client threads hammering the balancer during chaos.
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    errors: Mutex<Vec<String>>,
}

impl Tally {
    fn failures(&self) -> Vec<String> {
        self.errors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Spawns `threads` client threads that cycle the source corpus through
/// the balancer until `stop` flips, comparing every answer against the
/// reference bodies.
fn spawn_clients(
    balancer_addr: &str,
    reference: &Arc<Vec<String>>,
    threads: usize,
    stop: &Arc<AtomicBool>,
    tally: &Arc<Tally>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|t| {
            let addr = balancer_addr.to_string();
            let reference = Arc::clone(reference);
            let stop = Arc::clone(stop);
            let tally = Arc::clone(tally);
            std::thread::spawn(move || {
                let mut i = t; // offset so threads don't move in lockstep
                while !stop.load(Ordering::Relaxed) {
                    let idx = i % reference.len();
                    let (status, body, _) = request(&addr, "POST", "/scan", &scan_body(idx), "");
                    if status != 200 {
                        tally
                            .errors
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(format!("scan {idx}: status {status}: {body}"));
                    } else if body != reference[idx] {
                        tally
                            .errors
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(format!("scan {idx}: answer diverged from reference"));
                    } else {
                        tally.ok.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            })
        })
        .collect()
}

fn fleet_config(shards: &[ShardProc]) -> BalancerConfig {
    BalancerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.addr.clone()).collect(),
        health_interval: Duration::from_millis(100),
        fail_after: 2,
        recover_after: 2,
        ..BalancerConfig::default()
    }
}

/// SIGKILL of one of four shards mid-burst: every client request still
/// gets a 200 with a byte-identical body — the per-request failover
/// absorbs the murder before the probe loop even notices.
#[test]
fn kill9_mid_burst_loses_zero_requests() {
    let _guard = chaos_lock();
    const SOURCES: usize = 24;
    let mut shards: Vec<ShardProc> = (0..4)
        .map(|_| ShardProc::spawn_ready(&reserve_addr(), None))
        .collect();
    let balancer = start_balancer(fleet_config(&shards)).expect("balancer binds");
    let addr = balancer.addr().to_string();
    let reference = Arc::new(reference_answers(&addr, SOURCES));

    // Pick the victim deterministically: the shard that owns source 0, so
    // at least that source is guaranteed to need a failover.
    let (_, _, raw) = request(&addr, "POST", "/scan", &scan_body(0), "");
    let victim_addr = shard_header(&raw).expect("shard header");
    let victim = shards
        .iter()
        .position(|s| s.addr == victim_addr)
        .expect("victim in fleet");

    let stop = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(Tally::default());
    let clients = spawn_clients(&addr, &reference, 3, &stop, &tally);

    std::thread::sleep(Duration::from_millis(500));
    shards[victim].kill9();
    std::thread::sleep(Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }

    let failures = tally.failures();
    assert!(
        failures.is_empty(),
        "kill -9 mid-burst leaked client failures: {failures:?}"
    );
    assert!(tally.ok.load(Ordering::Relaxed) > 0, "burst did no work");
    let (_, metrics, _) = request(&addr, "GET", "/metrics", "", "");
    assert!(
        metric_value(&metrics, "sevuldet_balancer_failovers_total ") >= 1.0,
        "the murdered shard's traffic must have failed over:\n{metrics}"
    );
    balancer.shutdown();
}

/// A frozen shard accepts connections and answers `/healthz`, but its
/// worker never finishes a scan. Active probes see a healthy shard —
/// only *passive* outcomes (backend timeouts) catch it, open the breaker,
/// and keep clients whole via failover.
#[test]
fn frozen_shard_trips_breaker_passively() {
    let _guard = chaos_lock();
    let healthy = ShardProc::spawn_ready(&reserve_addr(), None);
    // The scan worker sleeps ~forever on its first batch; the event loop
    // (and thus /healthz) stays perfectly responsive.
    let frozen = ShardProc::spawn_ready(&reserve_addr(), Some("worker_forward=sleep:600000"));
    let shards = [healthy, frozen];

    let balancer = start_balancer(BalancerConfig {
        backend_timeout: Duration::from_millis(700),
        // Huge recovery threshold: succeeding /healthz probes would
        // otherwise half-open the breaker right back (documented operator
        // trade-off), and this test pins the *ejection*, not the flap.
        recover_after: 10_000,
        ..fleet_config(&shards)
    })
    .expect("balancer binds");
    let addr = balancer.addr().to_string();

    for i in 0..20 {
        let (status, body, _) = request(&addr, "POST", "/scan", &scan_body(i), "");
        assert_eq!(status, 200, "scan {i} must fail over the freeze: {body}");
    }

    // The frozen shard still *looks* healthy to active probes …
    let (frozen_status, _, _) = request(&shards[1].addr, "GET", "/healthz", "", "");
    assert_eq!(frozen_status, 200, "a frozen shard still answers /healthz");

    // … but passive outcomes opened its breaker and forced failovers.
    let (_, metrics, _) = request(&addr, "GET", "/metrics", "", "");
    assert!(
        metric_value(&metrics, "sevuldet_balancer_failovers_total ") >= 1.0,
        "frozen shard must have forced failovers:\n{metrics}"
    );
    let breaker = format!(
        "sevuldet_balancer_breaker_state{{shard=\"{}\"}} 1",
        shards[1].addr
    );
    assert!(
        metrics.contains(&breaker),
        "passive failures must open the frozen shard's breaker:\n{metrics}"
    );
    balancer.shutdown();
}

/// Hedged requests: with one shard slowed by a failpoint, `--hedge-after`
/// races the other shard after a fixed delay and takes the first answer —
/// collapsing the latency tail that un-hedged routing exhibits.
#[test]
fn hedging_cuts_slow_shard_tail_latency() {
    let _guard = chaos_lock();
    const SOURCES: usize = 16;
    let fast = ShardProc::spawn_ready(&reserve_addr(), None);
    let slow = ShardProc::spawn_ready(&reserve_addr(), Some("worker_forward=sleep:700"));
    let shards = [fast, slow];

    let timings = |addr: &str| -> Vec<Duration> {
        (0..SOURCES)
            .map(|i| {
                let t0 = Instant::now();
                let (status, body, _) = request(addr, "POST", "/scan", &scan_body(i), "");
                assert_eq!(status, 200, "scan {i}: {body}");
                t0.elapsed()
            })
            .collect()
    };

    // Phase 1 — hedging off: sources homed on the slow shard eat the full
    // failpoint delay.
    let plain = start_balancer(BalancerConfig {
        fail_after: 10_000, // keep the breaker out of this experiment
        ..fleet_config(&shards)
    })
    .expect("balancer binds");
    let slow_tail = timings(&plain.addr().to_string());
    plain.shutdown();
    let worst_plain = slow_tail.iter().max().copied().unwrap();
    assert!(
        worst_plain >= Duration::from_millis(500),
        "some source must home on the slow shard (worst {worst_plain:?})"
    );

    // Phase 2 — hedge after 80 ms: the fast shard answers long before the
    // slow one wakes up.
    let hedged = start_balancer(BalancerConfig {
        fail_after: 10_000,
        hedge_after: Some(HedgeAfter::Fixed(Duration::from_millis(80))),
        ..fleet_config(&shards)
    })
    .expect("balancer binds");
    let hedged_addr = hedged.addr().to_string();
    let hedge_tail = timings(&hedged_addr);
    let worst_hedged = hedge_tail.iter().max().copied().unwrap();
    assert!(
        worst_hedged < Duration::from_millis(500),
        "hedging must cut the tail below the failpoint delay (worst {worst_hedged:?})"
    );
    assert!(
        worst_hedged < worst_plain,
        "hedged tail {worst_hedged:?} must beat un-hedged {worst_plain:?}"
    );
    let (_, metrics, _) = request(&hedged_addr, "GET", "/metrics", "", "");
    for needle in [
        "sevuldet_balancer_hedges_total{outcome=\"launched\"}",
        "sevuldet_balancer_hedges_total{outcome=\"won\"}",
    ] {
        let v: f64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix(needle).and_then(|r| r.trim().parse().ok()))
            .unwrap_or_else(|| panic!("missing `{needle}`:\n{metrics}"));
        assert!(v >= 1.0, "`{needle}` must count:\n{metrics}");
    }
    hedged.shutdown();
}

/// Rolling restart of all four shards under sustained load: every client
/// request is answered correctly throughout — measured availability 100%,
/// far above the 99.9% the deployment contract demands.
#[test]
fn rolling_restart_keeps_every_client_whole() {
    let _guard = chaos_lock();
    const SOURCES: usize = 24;
    let mut shards: Vec<ShardProc> = (0..4)
        .map(|_| ShardProc::spawn_ready(&reserve_addr(), None))
        .collect();
    let balancer = start_balancer(fleet_config(&shards)).expect("balancer binds");
    let addr = balancer.addr().to_string();
    let reference = Arc::new(reference_answers(&addr, SOURCES));

    let stop = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(Tally::default());
    let clients = spawn_clients(&addr, &reference, 2, &stop, &tally);

    for i in 0..shards.len() {
        let shard_addr = shards[i].addr.clone();
        shards[i].kill9();
        std::thread::sleep(Duration::from_millis(300));
        shards[i] = ShardProc::spawn_ready(&shard_addr, None);
        wait_for_healthy(&addr, shards.len() as f64, 20);
    }

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    let failures = tally.failures();
    let ok = tally.ok.load(Ordering::Relaxed);
    assert!(
        failures.is_empty(),
        "rolling restart dropped requests (availability {:.4}%): {failures:?}",
        100.0 * ok as f64 / (ok + failures.len() as u64) as f64
    );
    assert!(ok > 0, "restart loop served no traffic");
    balancer.shutdown();
}

/// The deadline budget is a hard wall: with every shard frozen, a client
/// sending `X-Deadline-Ms: 400` gets exactly one typed 504 in ~400 ms —
/// retries and failovers never stack past the budget.
#[test]
fn deadline_budget_bounds_retries() {
    let _guard = chaos_lock();
    let a = ShardProc::spawn_ready(&reserve_addr(), Some("worker_forward=sleep:600000"));
    let b = ShardProc::spawn_ready(&reserve_addr(), Some("worker_forward=sleep:600000"));
    let shards = [a, b];
    let balancer = start_balancer(BalancerConfig {
        backend_timeout: Duration::from_secs(10),
        fail_after: 10_000, // keep both shards routable: only the budget stops us
        ..fleet_config(&shards)
    })
    .expect("balancer binds");
    let addr = balancer.addr().to_string();

    let t0 = Instant::now();
    let (status, body, _) = request(
        &addr,
        "POST",
        "/scan",
        &scan_body(0),
        "X-Deadline-Ms: 400\r\n",
    );
    let elapsed = t0.elapsed();
    assert_eq!(status, 504, "exhausted budget must be a local 504: {body}");
    assert!(
        body.contains("deadline"),
        "the 504 must be a typed deadline error: {body}"
    );
    assert!(
        elapsed >= Duration::from_millis(350),
        "the budget should be spent trying ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_millis(1500),
        "retries stacked past the client deadline ({elapsed:?})"
    );
    let (_, metrics, _) = request(&addr, "GET", "/metrics", "", "");
    assert!(
        metric_value(&metrics, "sevuldet_balancer_deadline_local_total ") >= 1.0,
        "local 504s must be counted:\n{metrics}"
    );
    balancer.shutdown();
}

/// Long randomized chaos: a seeded kill schedule murders and revives
/// random shards under load for several rounds. Gated behind
/// `SEVULDET_CHAOS_LONG=1` so the per-push CI run stays deterministic and
/// quick; the scheduled job turns it on.
#[test]
fn long_randomized_kill_schedule() {
    if std::env::var("SEVULDET_CHAOS_LONG").as_deref() != Ok("1") {
        eprintln!("skipping: set SEVULDET_CHAOS_LONG=1 for the randomized chaos run");
        return;
    }
    let _guard = chaos_lock();
    let seed: u64 = std::env::var("SEVULDET_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let mut rng = seed.max(1);
    let mut next = move || {
        // xorshift64: deterministic per seed, no external crates.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    const SOURCES: usize = 24;
    let mut shards: Vec<ShardProc> = (0..4)
        .map(|_| ShardProc::spawn_ready(&reserve_addr(), None))
        .collect();
    let balancer = start_balancer(fleet_config(&shards)).expect("balancer binds");
    let addr = balancer.addr().to_string();
    let reference = Arc::new(reference_answers(&addr, SOURCES));

    let stop = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(Tally::default());
    let clients = spawn_clients(&addr, &reference, 3, &stop, &tally);

    for round in 0..6 {
        let victim = (next() as usize) % shards.len();
        let pause = 100 + next() % 400;
        let shard_addr = shards[victim].addr.clone();
        shards[victim].kill9();
        std::thread::sleep(Duration::from_millis(pause));
        shards[victim] = ShardProc::spawn_ready(&shard_addr, None);
        wait_for_healthy(&addr, shards.len() as f64, 20);
        eprintln!("round {round}: killed+revived shard {victim} (pause {pause}ms)");
    }

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    let failures = tally.failures();
    assert!(
        failures.is_empty(),
        "randomized chaos dropped requests: {failures:?}"
    );
    balancer.shutdown();
}
