//! Property tests for the incremental HTTP request parser backing the
//! event loop. The balancer's failover and hedging machinery replays
//! requests byte-for-byte, so [`parse_request_buffer`] must behave
//! identically however the bytes are sliced by the network:
//!
//! * feeding a valid request one prefix at a time — every byte boundary —
//!   answers `NeedMore` until the exact final byte, then parses to the
//!   same request as one-shot parsing;
//! * arbitrary byte soup (raw, or grafted onto a plausible request line)
//!   never panics on any prefix — only `NeedMore`, `Complete`, or a typed
//!   [`HttpError`].

use proptest::prelude::*;
use sevuldet_serve::http::{parse_request_buffer, ParseStatus, Request};

/// Lowercase identifier fragments for methods-adjacent tokens, paths, and
/// header values: valid enough to parse, varied enough to shift every
/// offset in the head.
fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..10)
        .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
}

/// A syntactically valid request and its wire bytes.
fn wire_request() -> impl Strategy<Value = Vec<u8>> {
    (
        prop_oneof![Just("GET"), Just("POST"), Just("PUT")],
        ident(),
        proptest::collection::vec(any::<u8>(), 0..64),
        (ident(), ident()),
        any::<bool>(),
    )
        .prop_map(|(method, path, body, (hname, hval), keep_alive)| {
            let mut text = format!("{method} /{path} HTTP/1.1\r\nHost: t\r\nX-{hname}: {hval}\r\n");
            if !keep_alive {
                text.push_str("Connection: close\r\n");
            }
            text.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
            let mut wire = text.into_bytes();
            wire.extend_from_slice(&body);
            wire
        })
}

fn complete(buf: &[u8]) -> Option<(Request, usize)> {
    match parse_request_buffer(buf) {
        Ok(ParseStatus::Complete { req, consumed }) => Some((req, consumed)),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every prefix of a valid request is `NeedMore`; the full buffer (and
    /// the full buffer with pipelined trailing bytes) parses to the same
    /// request as one-shot parsing, consuming exactly the request's bytes.
    #[test]
    fn every_byte_boundary_split_agrees_with_one_shot(
        wire in wire_request(),
        trailer in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let (reference, consumed) = complete(&wire)
            .expect("generated request must parse one-shot");
        prop_assert_eq!(consumed, wire.len());

        for i in 0..wire.len() {
            match parse_request_buffer(&wire[..i]) {
                Ok(ParseStatus::NeedMore) => {}
                Ok(ParseStatus::Complete { .. }) => {
                    return Err(TestCaseError::new(format!(
                        "prefix of {i}/{} bytes claimed completeness",
                        wire.len()
                    )));
                }
                Err(e) => {
                    return Err(TestCaseError::new(format!(
                        "prefix of {i}/{} bytes errored: {} {}",
                        wire.len(),
                        e.status,
                        e.msg
                    )));
                }
            }
        }

        // A pipelined remainder after the request must not change what is
        // parsed or how much is consumed.
        let mut piped = wire.clone();
        piped.extend_from_slice(&trailer);
        let (req, consumed) = complete(&piped).expect("pipelined parse");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(&req.method, &reference.method);
        prop_assert_eq!(&req.path, &reference.path);
        prop_assert_eq!(&req.headers, &reference.headers);
        prop_assert_eq!(&req.body, &reference.body);
    }

    /// Byte soup — raw, or grafted onto a well-formed request line so the
    /// parser gets deep into header parsing — never panics on any prefix.
    #[test]
    fn byte_soup_never_panics(
        soup in proptest::collection::vec(any::<u8>(), 1..300),
        graft in any::<bool>(),
    ) {
        let mut buf = if graft {
            b"POST /scan HTTP/1.1\r\n".to_vec()
        } else {
            Vec::new()
        };
        buf.extend_from_slice(&soup);
        for i in 0..=buf.len() {
            // Any of the three outcomes is fine; panicking is not.
            let _ = parse_request_buffer(&buf[..i]);
        }
    }
}
