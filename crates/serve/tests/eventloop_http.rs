//! Event-loop-specific integration suite: byte-identity against the
//! thread-per-connection reference, slow-client hardening (408/431/413),
//! pipelined keep-alive requests, an EAGAIN torture run over artificially
//! tiny kernel socket buffers, connection accounting, over-capacity
//! shedding, and a thousand idle connections held open at once.
//!
//! Everything here runs the same tiny trained model over real TCP sockets.
#![cfg(target_os = "linux")]

use sevuldet::{save_detector, score_source, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, IoModel, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

const CLEAN: &str = "int three() { return 3; }";

fn detector() -> Detector {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        seed: 42,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed: 42,
        ..TrainConfig::quick()
    };
    Detector::train(&corpus, ModelKind::SevulDet, &cfg)
}

fn model_text() -> &'static str {
    static M: OnceLock<String> = OnceLock::new();
    M.get_or_init(|| save_detector(&mut detector()))
}

fn write_model(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-evloop-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, model_text()).expect("write model");
    path
}

fn serve(tag: &str, cfg: ServeConfig) -> ServerHandle {
    let path = write_model(tag);
    let registry = ModelRegistry::open(&path).expect("model loads");
    start(cfg, registry).expect("server binds")
}

fn eventloop_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        io_model: IoModel::EventLoop,
        ..ServeConfig::default()
    }
}

/// One request over a fresh `Connection: close` socket → full raw response.
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n{extra_headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> (u16, String) {
    let raw = request_raw(addr, method, path, body, extra_headers);
    split_response(&raw)
}

fn split_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scan_body(source: &str, name: &str) -> String {
    Json::obj(vec![
        ("source", Json::str(source)),
        ("name", Json::str(name)),
    ])
    .to_string()
}

/// Reads exactly one keep-alive response (headers + `Content-Length` body)
/// from `stream`, returning `(status, body)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("header byte");
        head.push(byte[0]);
        assert!(head.len() < 64 * 1024, "runaway response head");
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("content length");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// The acceptance criterion: for every route and error class, the event
/// loop answers with the exact bytes the thread-per-connection path (and
/// therefore the CLI `--json` path) produces.
#[test]
fn event_loop_matches_threaded_path_byte_for_byte() {
    let ev = serve("bytes-ev", eventloop_config());
    let th = serve(
        "bytes-th",
        ServeConfig {
            io_model: IoModel::Threads,
            ..eventloop_config()
        },
    );

    let cases: &[(&str, &str, String, &str)] = &[
        ("POST", "/scan", scan_body(LEAKY, "leaky.c"), ""),
        ("POST", "/scan", scan_body(CLEAN, "clean.c"), ""),
        (
            "POST",
            "/scan",
            scan_body("int main( {{{ oops", "bad.c"),
            "",
        ),
        ("POST", "/scan", "{not json".to_string(), ""),
        ("POST", "/scan", "{\"nosource\": 1}".to_string(), ""),
        ("GET", "/healthz", String::new(), ""),
        ("GET", "/nowhere", String::new(), ""),
        ("GET", "/scan", String::new(), ""),
        ("PUT", "/metrics", String::new(), ""),
        ("POST", "/reload", String::new(), ""),
        // Post-reload: both serve model version 2 and still agree.
        ("GET", "/healthz", String::new(), ""),
        ("POST", "/scan", scan_body(LEAKY, "leaky.c"), ""),
    ];
    for (method, path, body, extra) in cases {
        let (ev_status, ev_body) = request(ev.addr(), method, path, body, extra);
        let (th_status, th_body) = request(th.addr(), method, path, body, extra);
        assert_eq!(
            (ev_status, &ev_body),
            (th_status, &th_body),
            "event loop diverged on {method} {path}"
        );
    }

    // And both match the library path the CLI prints with `--json`.
    let expected = score_source(&detector(), LEAKY, 1)
        .expect("scans")
        .to_json("leaky.c")
        .to_string();
    let (status, body) = request(ev.addr(), "POST", "/scan", &scan_body(LEAKY, "leaky.c"), "");
    assert_eq!(status, 200);
    assert_eq!(body, expected, "event loop changed the scan report");

    ev.shutdown();
    th.shutdown();
}

/// `/metrics` exposes the same series under both I/O models (values differ;
/// the shape must not).
#[test]
fn metrics_series_match_threaded_path() {
    let ev = serve("mshape-ev", eventloop_config());
    let th = serve(
        "mshape-th",
        ServeConfig {
            io_model: IoModel::Threads,
            ..eventloop_config()
        },
    );
    for h in [&ev, &th] {
        let (status, _) = request(h.addr(), "POST", "/scan", &scan_body(LEAKY, "x.c"), "");
        assert_eq!(status, 200);
    }
    let series = |addr: SocketAddr| -> std::collections::BTreeSet<String> {
        let (status, text) = request(addr, "GET", "/metrics", "", "");
        assert_eq!(status, 200);
        text.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| {
                // Keep the metric name + label keys, drop values (and the
                // timing-dependent `le` bucket spread stays identical
                // because bucket bounds are static).
                l.rsplit_once(' ').map(|(k, _)| k.to_string()).unwrap()
            })
            .collect()
    };
    let ev_series = series(ev.addr());
    let th_series = series(th.addr());
    assert_eq!(
        ev_series, th_series,
        "the two I/O models expose different metric series"
    );
    assert!(ev_series
        .iter()
        .any(|s| s.starts_with("sevuldet_open_connections")));
    ev.shutdown();
    th.shutdown();
}

/// A client that sends half a request head and stalls gets `408` once the
/// header deadline lapses — the slowloris defence.
#[test]
fn slowloris_partial_head_answers_408() {
    let handle = serve(
        "slowloris",
        ServeConfig {
            header_deadline: Duration::from_millis(300),
            ..eventloop_config()
        },
    );
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"POST /scan HTT").expect("partial head");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (status, body) = split_response(&raw);
    assert_eq!(status, 408, "{raw}");
    assert!(body.contains("timeout reading request head"), "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "", "");
    assert!(
        metrics.contains("sevuldet_connections_closed_total{reason=\"header_timeout\"} 1"),
        "{metrics}"
    );
    handle.shutdown();
}

/// A request head larger than the cap answers `431` without waiting for
/// its end.
#[test]
fn oversized_head_answers_431() {
    let handle = serve("bighead", eventloop_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nX-Padding: {}\r\n",
        "a".repeat(20 * 1024)
    );
    // The server may answer (and reset) before the whole head is written;
    // a send error is acceptable, the response must still be readable.
    let _ = stream.write_all(huge.as_bytes());
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    let (status, _) = split_response(&raw);
    assert_eq!(status, 431, "{raw}");
    handle.shutdown();
}

/// A declared body beyond the cap answers `413` before the upload finishes.
#[test]
fn oversized_body_answers_413() {
    let handle = serve("bigbody", eventloop_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        8 * 1024 * 1024
    );
    stream.write_all(req.as_bytes()).expect("send head");
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    let (status, _) = split_response(&raw);
    assert_eq!(status, 413, "{raw}");
    handle.shutdown();
}

/// Several requests written back-to-back in a single TCP segment are
/// answered in order on the same connection — the pipelining regression
/// test for the event loop's buffer management.
#[test]
fn pipelined_requests_answer_in_order() {
    let handle = serve("pipeline", eventloop_config());
    let det = detector();
    let expected_a = score_source(&det, LEAKY, 1)
        .expect("scans")
        .to_json("a.c")
        .to_string();
    let expected_b = score_source(&det, CLEAN, 1)
        .expect("scans")
        .to_json("b.c")
        .to_string();

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut burst = Vec::new();
    for (source, name) in [(LEAKY, "a.c"), (CLEAN, "b.c")] {
        let body = scan_body(source, name);
        burst.extend_from_slice(
            format!(
                "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    stream.write_all(&burst).expect("pipelined burst");

    let (s1, b1) = read_one_response(&mut stream);
    let (s2, b2) = read_one_response(&mut stream);
    let (s3, b3) = read_one_response(&mut stream);
    assert_eq!((s1, &b1), (200, &expected_a), "first pipelined response");
    assert_eq!((s2, &b2), (200, &expected_b), "second pipelined response");
    assert_eq!(s3, 200, "{b3}");
    assert!(b3.contains("\"status\":\"ok\""), "{b3}");
    handle.shutdown();
}

/// `Connection: close` is honoured mid-pipeline: the socket closes after
/// the first response even with a second request already buffered.
#[test]
fn connection_close_is_honoured() {
    let handle = serve("connclose", eventloop_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n\
              GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read to close");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert_eq!(
        raw.matches("HTTP/1.1").count(),
        1,
        "server answered past Connection: close:\n{raw}"
    );
    handle.shutdown();
}

/// EAGAIN torture: kernel socket buffers shrunk to ~1KiB force the loop
/// through partial reads on large uploads and partial writes (EPOLLOUT
/// resumption) on large responses. The `name` field round-trips into the
/// report, making the response itself large.
#[test]
fn eagain_torture_with_tiny_socket_buffers() {
    let handle = serve(
        "eagain",
        ServeConfig {
            sock_buf_bytes: Some(1024),
            ..eventloop_config()
        },
    );
    let big_name = "n".repeat(64 * 1024);
    let body = scan_body(CLEAN, &big_name);
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    for round in 0..3 {
        // Dribble the upload in small chunks so the server keeps hitting
        // EAGAIN between reads.
        for chunk in req.as_bytes().chunks(1500) {
            stream.write_all(chunk).expect("chunk");
            std::thread::sleep(Duration::from_micros(200));
        }
        let (status, resp) = read_one_response(&mut stream);
        assert_eq!(status, 200, "round {round}: {resp}");
        assert!(
            resp.contains(&big_name),
            "round {round}: large response truncated ({} bytes)",
            resp.len()
        );
    }
    handle.shutdown();
}

/// Accepts beyond `max_connections` are shed at accept time and counted;
/// established connections keep working.
#[test]
fn over_capacity_accepts_are_shed_and_counted() {
    let handle = serve(
        "overcap",
        ServeConfig {
            max_connections: 2,
            ..eventloop_config()
        },
    );
    let addr = handle.addr();
    let streams: Vec<TcpStream> = (0..5)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // loop accepted/shed all

    let mut ok = 0;
    let mut shed = 0;
    for mut s in streams {
        let sent = s
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .is_ok();
        let mut raw = String::new();
        match s.read_to_string(&mut raw) {
            Ok(_) if raw.starts_with("HTTP/1.1 200") => ok += 1,
            _ if !sent || raw.is_empty() => shed += 1,
            _ => shed += 1,
        }
    }
    assert!(ok >= 1, "held connections must keep working");
    assert!(shed >= 1, "excess connections must be shed");

    // The held slots are free again, so a fresh metrics request succeeds
    // (retry while the loop notices the closures).
    let metrics = (0..50)
        .find_map(|_| {
            std::thread::sleep(Duration::from_millis(50));
            let mut s = TcpStream::connect(addr).ok()?;
            s.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .ok()?;
            let mut raw = String::new();
            s.read_to_string(&mut raw).ok()?;
            raw.starts_with("HTTP/1.1 200").then_some(raw)
        })
        .expect("metrics after slots freed");
    let count: u64 = metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix("sevuldet_connections_closed_total{reason=\"over_capacity\"} ")
        })
        .and_then(|v| v.trim().parse().ok())
        .expect("over_capacity series");
    assert!(count >= 1, "shed connections must be counted:\n{metrics}");
    handle.shutdown();
}

/// A thousand idle keep-alive connections held open at once: the server
/// stays live, the gauge reflects them, and every one still answers.
#[test]
fn a_thousand_idle_connections_stay_serviceable() {
    let handle = serve("idle1k", eventloop_config());
    let addr = handle.addr();
    const N: usize = 1000;
    let mut conns: Vec<TcpStream> = Vec::with_capacity(N);
    for i in 0..N {
        let s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        conns.push(s);
        if i % 128 == 0 {
            std::thread::sleep(Duration::from_millis(2)); // pace the storm
        }
    }
    // Give the loop a beat to drain the accept queue, then confirm the
    // gauge sees them (the +1 is our metrics connection itself).
    let open = (0..100)
        .find_map(|_| {
            std::thread::sleep(Duration::from_millis(50));
            let (status, text) = request(addr, "GET", "/metrics", "", "");
            assert_eq!(status, 200);
            let open: i64 = text
                .lines()
                .find_map(|l| l.strip_prefix("sevuldet_open_connections "))
                .and_then(|v| v.trim().parse().ok())?;
            (open >= N as i64).then_some(open)
        })
        .expect("gauge never reached 1000 open connections");
    assert!(open >= N as i64);

    // Every held connection is still serviceable — exercise a sample.
    let body = scan_body(CLEAN, "idle.c");
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    for i in (0..N).step_by(100) {
        conns[i]
            .write_all(req.as_bytes())
            .expect("send on idle conn");
        let (status, resp) = read_one_response(&mut conns[i]);
        assert_eq!(status, 200, "idle conn #{i}: {resp}");
    }
    drop(conns);
    handle.shutdown();
}
