//! Subprocess cache-robustness suite, extending the fault-injection
//! pattern to the incremental artifact cache: the real `sevuldet` binary
//! is run with `--cache-dir`, killed mid-cache-write, fed corrupted
//! entries, and handed overlapping path arguments — and in every case the
//! `--json` report must be byte-identical to a cache-less run. Also pins
//! the `cache` subcommand's typed exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const BIN: &str = env!("CARGO_BIN_EXE_sevuldet");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-cf-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs the binary with a clean cache/failpoint environment unless
/// overridden.
fn run(args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args)
        .env_remove("SEVULDET_CACHE_DIR")
        .env_remove("SEVULDET_FAILPOINTS");
    if let Some(spec) = failpoints {
        cmd.env("SEVULDET_FAILPOINTS", spec);
    }
    cmd.output().expect("spawn sevuldet")
}

/// One tiny model shared by every test (training dominates test time).
fn model() -> &'static str {
    static CELL: OnceLock<String> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir = tmpdir("model");
        let path = dir.join("model.svd").display().to_string();
        let out = run(
            &[
                "train",
                "--per-category",
                "2",
                "--epochs",
                "1",
                "--seed",
                "9",
                "--out",
                &path,
            ],
            None,
        );
        assert!(out.status.success(), "shared train failed");
        path
    })
}

/// A small source tree: one file with a real finding-bearing gadget, one
/// clean file, one in a subdirectory.
fn write_tree(dir: &Path) {
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    std::fs::write(
        dir.join("a.c"),
        "void copy(char *dst, char *src) {\n    strcpy(dst, src);\n}\n",
    )
    .unwrap();
    std::fs::write(dir.join("b.c"), "int main() { return 0; }\n").unwrap();
    std::fs::write(
        dir.join("sub").join("c.c"),
        "void use(char *p, int n) {\n    if (n < 8) {\n        memcpy(p, p, n);\n    }\n}\n",
    )
    .unwrap();
}

fn scan_json(tree: &Path, cache: Option<&Path>, failpoints: Option<&str>) -> Output {
    let tree = tree.display().to_string();
    let mut args = vec!["scan", &tree, "--model", model(), "--json"];
    let cache_str;
    match cache {
        Some(dir) => {
            cache_str = dir.display().to_string();
            args.push("--cache-dir");
            args.push(&cache_str);
        }
        None => args.push("--no-cache"),
    }
    run(&args, failpoints)
}

fn cache_entries(cache: &Path) -> Vec<PathBuf> {
    let Ok(read) = std::fs::read_dir(cache) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = read
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "svdc"))
        .collect();
    v.sort();
    v
}

#[test]
fn reports_identical_cold_warm_and_after_corruption() {
    let tree = tmpdir("tree-corrupt");
    let cache = tmpdir("cache-corrupt");
    write_tree(&tree);

    let baseline = scan_json(&tree, None, None);
    assert!(baseline.status.success(), "cache-less scan failed");
    assert!(!baseline.stdout.is_empty());

    let cold = scan_json(&tree, Some(&cache), None);
    assert!(cold.status.success());
    assert_eq!(cold.stdout, baseline.stdout, "cold cached scan diverged");
    let entries = cache_entries(&cache);
    assert_eq!(entries.len(), 3, "one entry per scanned file");

    let warm = scan_json(&tree, Some(&cache), None);
    assert_eq!(warm.stdout, baseline.stdout, "warm cached scan diverged");

    // Flip a byte in the middle of every entry: the scan must silently
    // recompute, byte-identical, and `cache verify` must flag the damage
    // first (exit 4) and pass after the scan healed the store (exit 0).
    for path in &entries {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(path, bytes).unwrap();
    }
    let cache_str = cache.display().to_string();
    let verify = run(&["cache", "verify", "--cache-dir", &cache_str], None);
    assert_eq!(
        verify.status.code(),
        Some(4),
        "verify must exit 4 on damaged entries"
    );
    let damaged = scan_json(&tree, Some(&cache), None);
    assert!(damaged.status.success());
    assert_eq!(
        damaged.stdout, baseline.stdout,
        "scan over a corrupted cache diverged"
    );
    let verify = run(&["cache", "verify", "--cache-dir", &cache_str], None);
    assert_eq!(
        verify.status.code(),
        Some(0),
        "store must be healed after the recompute: {}",
        String::from_utf8_lossy(&verify.stdout)
    );
    std::fs::remove_dir_all(&tree).ok();
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn crash_mid_cache_write_leaves_no_torn_entry() {
    let tree = tmpdir("tree-midwrite");
    let cache = tmpdir("cache-midwrite");
    write_tree(&tree);
    let baseline = scan_json(&tree, None, None);
    assert!(baseline.status.success());

    // `save_midwrite` fires inside `atomic_write` — the first cache-entry
    // save aborts the scan partway through.
    let killed = scan_json(&tree, Some(&cache), Some("save_midwrite=abort"));
    assert!(!killed.status.success(), "failpoint must abort the scan");
    assert!(
        cache_entries(&cache).is_empty(),
        "a mid-write crash must not commit an entry at its final path"
    );

    // Recovery needs nothing: the next scan recomputes, matches the
    // cache-less report, and leaves a clean store behind.
    let recovered = scan_json(&tree, Some(&cache), None);
    assert!(recovered.status.success());
    assert_eq!(
        recovered.stdout, baseline.stdout,
        "post-crash scan diverged"
    );
    assert_eq!(cache_entries(&cache).len(), 3);
    let cache_str = cache.display().to_string();
    assert_eq!(
        run(&["cache", "verify", "--cache-dir", &cache_str], None)
            .status
            .code(),
        Some(0)
    );
    std::fs::remove_dir_all(&tree).ok();
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn overlapping_path_arguments_scan_each_file_once_in_stable_order() {
    let tree = tmpdir("tree-overlap");
    write_tree(&tree);
    let tree_str = tree.display().to_string();
    let a = tree.join("a.c").display().to_string();
    let sub = tree.join("sub").display().to_string();

    let plain = run(&["scan", &tree_str, "--model", model(), "--json"], None);
    assert!(plain.status.success());
    // Dir + explicit member + subdir + dir again: same set, same order.
    let overlapping = run(
        &[
            "scan",
            &tree_str,
            &a,
            &sub,
            &tree_str,
            "--model",
            model(),
            "--json",
        ],
        None,
    );
    assert!(overlapping.status.success());
    assert_eq!(
        overlapping.stdout, plain.stdout,
        "overlapping arguments changed the report"
    );
    // And each file appears exactly once.
    let text = String::from_utf8(plain.stdout).unwrap();
    for name in ["a.c", "b.c", "c.c"] {
        assert_eq!(
            text.matches(name).count(),
            1,
            "{name} should appear exactly once in:\n{text}"
        );
    }
    std::fs::remove_dir_all(&tree).ok();
}

#[test]
fn cache_subcommand_exit_codes_follow_the_scheme() {
    let cache = tmpdir("cache-codes");
    let cache_str = cache.display().to_string();
    let code = |args: &[&str]| run(args, None).status.code();

    // Usage errors: 2.
    assert_eq!(code(&["cache"]), Some(2), "cache without subcommand");
    assert_eq!(code(&["cache", "stats"]), Some(2), "stats without dir");
    assert_eq!(
        code(&["cache", "defrag", "--cache-dir", &cache_str]),
        Some(2),
        "unknown subcommand"
    );
    let tree = tmpdir("tree-codes");
    write_tree(&tree);
    let tree_str = tree.display().to_string();
    assert_eq!(
        code(&[
            "scan",
            &tree_str,
            "--model",
            model(),
            "--cache-dir",
            &cache_str,
            "--no-cache",
        ]),
        Some(2),
        "--no-cache conflicts with --cache-dir"
    );

    // Healthy flows: 0.
    assert_eq!(
        code(&["cache", "stats", "--cache-dir", &cache_str]),
        Some(0)
    );
    assert!(scan_json(&tree, Some(&cache), None).status.success());
    let stats = run(&["cache", "stats", "--cache-dir", &cache_str], None);
    assert_eq!(stats.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&stats.stdout).contains("3 entries"),
        "stats should count the scanned files: {}",
        String::from_utf8_lossy(&stats.stdout)
    );
    assert_eq!(
        code(&["cache", "verify", "--cache-dir", &cache_str]),
        Some(0)
    );

    // A truncated entry: verify 4, clear 0, then verify 0 on empty.
    let entry = cache_entries(&cache).pop().expect("entry");
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(
        code(&["cache", "verify", "--cache-dir", &cache_str]),
        Some(4)
    );
    assert_eq!(
        code(&["cache", "clear", "--cache-dir", &cache_str]),
        Some(0)
    );
    assert!(cache_entries(&cache).is_empty());
    assert_eq!(
        code(&["cache", "verify", "--cache-dir", &cache_str]),
        Some(0)
    );

    // The environment fallback works like the flag.
    let env_stats = Command::new(BIN)
        .args(["cache", "stats"])
        .env("SEVULDET_CACHE_DIR", &cache_str)
        .env_remove("SEVULDET_FAILPOINTS")
        .output()
        .expect("spawn sevuldet");
    assert_eq!(env_stats.status.code(), Some(0));
    std::fs::remove_dir_all(&tree).ok();
    std::fs::remove_dir_all(&cache).ok();
}
