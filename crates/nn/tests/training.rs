//! Training-dynamics integration tests: the architectural claims behind
//! Tables II/III reproduced on controlled synthetic tasks, where ground
//! truth is exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sevuldet_nn::{
    bce_with_logits, Adam, CellKind, CnnConfig, RnnNet, SequenceClassifier, SevulDetCnn, Tensor,
};

const VOCAB: usize = 12;
const DIM: usize = 10;

fn table(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        &[VOCAB, DIM],
        (0..VOCAB * DIM).map(|_| rng.gen_range(-0.4..0.4)).collect(),
    )
}

/// Task: the discriminative bigram (8, 9) appears at the *end* of a long
/// sequence. Fixed-length truncation at 32 tokens drops it; SPP does not.
fn tail_signal_sample(rng: &mut StdRng, len: usize) -> (Vec<usize>, bool) {
    let pos = rng.gen_bool(0.5);
    let mut ids: Vec<usize> = (0..len).map(|_| rng.gen_range(1..7)).collect();
    if pos {
        let at = len - 2;
        ids[at] = 8;
        ids[at + 1] = 9;
    }
    (ids, pos)
}

fn train_and_test<M: SequenceClassifier>(
    model: &mut M,
    seed: u64,
    len: usize,
    steps: usize,
) -> f64 {
    train_and_test_lr(model, seed, len, steps, 5e-3)
}

fn train_and_test_lr<M: SequenceClassifier>(
    model: &mut M,
    seed: u64,
    len: usize,
    steps: usize,
    lr: f64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Adam::new(lr);
    for _ in 0..steps {
        let (ids, pos) = tail_signal_sample(&mut rng, len);
        let logit = model.forward_logit(&ids, true, &mut rng);
        let (_, d) = bce_with_logits(logit, if pos { 1.0 } else { 0.0 });
        model.backward(d);
        opt.step(&mut model.params_mut());
    }
    let mut correct = 0;
    for _ in 0..120 {
        let (ids, pos) = tail_signal_sample(&mut rng, len);
        if (model.forward_logit(&ids, false, &mut rng) > 0.0) == pos {
            correct += 1;
        }
    }
    correct as f64 / 120.0
}

#[test]
fn spp_network_reads_evidence_past_the_truncation_point() {
    let len = 96;
    let mut rng = StdRng::seed_from_u64(1);
    // Plain CNN isolates the SPP property from attention dynamics.
    let cfg = CnnConfig {
        channels: 8,
        ..CnnConfig::plain()
    };
    let mut flexible = SevulDetCnn::new(table(2), cfg.clone(), &mut rng);
    let acc_flexible = train_and_test_lr(&mut flexible, 3, len, 1200, 1e-3);

    let mut truncated = SevulDetCnn::new(
        table(2),
        CnnConfig {
            fixed_len: Some(32),
            ..cfg
        },
        &mut rng,
    );
    let acc_truncated = train_and_test_lr(&mut truncated, 3, len, 1200, 1e-3);

    assert!(acc_flexible >= 0.9, "flexible accuracy {acc_flexible}");
    assert!(
        acc_truncated <= 0.65,
        "truncated model cannot see the tail: {acc_truncated}"
    );
}

#[test]
fn rnn_with_sufficient_steps_learns_tail_signal() {
    // With τ covering the sequence, the BGRU *does* learn it — the
    // comparison is about truncation, not architecture mysticism.
    let mut rng = StdRng::seed_from_u64(4);
    let mut bgru = RnnNet::new(table(5), CellKind::Gru, 12, 96, 0.0, &mut rng);
    let acc = train_and_test(&mut bgru, 6, 96, 400);
    assert!(acc >= 0.85, "full-window BGRU accuracy {acc}");

    let mut short = RnnNet::new(table(5), CellKind::Gru, 12, 32, 0.0, &mut rng);
    let acc_short = train_and_test(&mut short, 6, 96, 400);
    assert!(acc_short <= 0.65, "τ=32 BGRU loses the tail: {acc_short}");
}

#[test]
fn batch_training_is_deterministic_given_seed() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = CnnConfig {
            channels: 6,
            ..CnnConfig::default()
        };
        let mut m = SevulDetCnn::new(table(8), cfg, &mut rng);
        let mut opt = Adam::new(1e-3);
        for i in 0..40 {
            let ids: Vec<usize> = (0..20).map(|j| (i + j) % VOCAB).collect();
            let logit = m.forward_logit(&ids, true, &mut rng);
            let (_, d) = bce_with_logits(logit, (i % 2) as f64);
            m.backward(d);
            opt.step(&mut m.params_mut());
        }
        m.forward_logit(&[1, 2, 3, 4], false, &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn gradient_accumulation_equals_sum_of_per_sample_gradients() {
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = CnnConfig {
        channels: 4,
        dropout: 0.0,
        ..CnnConfig::default()
    };
    let mut m = SevulDetCnn::new(table(10), cfg, &mut rng);
    let batches: Vec<(Vec<usize>, f64)> = vec![
        ((1..8).collect(), 1.0),
        ((2..12).collect(), 0.0),
        ((0..5).collect(), 1.0),
    ];
    // Accumulate over the batch.
    for (ids, y) in &batches {
        let logit = m.forward_logit(ids, false, &mut rng);
        let (_, d) = bce_with_logits(logit, *y);
        m.backward(d);
    }
    let accumulated: Vec<Vec<f64>> = m.params_mut().iter().map(|p| p.g.data().to_vec()).collect();
    for p in m.params_mut() {
        p.zero_grad();
    }
    // Per-sample sums must match.
    let mut sums: Vec<Vec<f64>> = accumulated.iter().map(|g| vec![0.0; g.len()]).collect();
    for (ids, y) in &batches {
        let logit = m.forward_logit(ids, false, &mut rng);
        let (_, d) = bce_with_logits(logit, *y);
        m.backward(d);
        for (sum, p) in sums.iter_mut().zip(m.params_mut()) {
            for (s, g) in sum.iter_mut().zip(p.g.data()) {
                *s += g;
            }
            p.zero_grad();
        }
    }
    for (a, b) in accumulated.iter().zip(&sums) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
