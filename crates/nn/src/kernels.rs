//! The kernel layer: register-tiled GEMM / matvec, im2col lowering, and a
//! reusable [`Workspace`] scratch-buffer pool.
//!
//! Every routine here is **bit-identical** to the naive loop it replaces.
//! The tiling only regroups the *output* dimensions (which rows/columns are
//! produced together); the k-accumulation of every output element still runs
//! in strictly ascending order with the same skip convention as the loop it
//! replaced, so each element is the same left-to-right chain of `+=` on the
//! same operands. That is what preserves the byte-identical-model
//! determinism guarantee across `--jobs` values (see DESIGN.md).
//!
//! Two GEMM variants exist because the legacy loops had two skip
//! conventions:
//!
//! * [`gemm_acc`] skips `a == 0.0` elements, matching `Tensor::matmul` and
//!   the convolution loops (which skipped zero-padding / zero gradients);
//! * [`gemm_acc_dense`] never skips, matching the `matvec`-based paths
//!   (attention projections, RNN input projections) that always added every
//!   term.
//!
//! Picking the variant that matches the replaced loop keeps the replacement
//! exact even around signed zeros.

use std::sync::atomic::{AtomicU64, Ordering};

/// Workspace acquisitions served from the pool (no heap allocation).
static WS_HITS: AtomicU64 = AtomicU64::new(0);
/// Workspace acquisitions that had to allocate or grow a buffer.
static WS_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide workspace reuse counters `(hits, misses)`. A *hit* is an
/// `acquire` served entirely from pooled capacity; a *miss* allocated or
/// grew. In an allocation-free steady state only hits accumulate, so the
/// miss counter is a proxy for heap allocations on the forward path (the
/// serve `/metrics` endpoint exports both).
pub fn workspace_counters() -> (u64, u64) {
    (
        WS_HITS.load(Ordering::Relaxed),
        WS_MISSES.load(Ordering::Relaxed),
    )
}

/// A pool of reusable `f64` scratch buffers for forward/backward passes.
///
/// `acquire` hands out a zeroed buffer of the requested length, reusing
/// pooled capacity when possible; `release` returns it. Buffers are reused
/// LIFO, so a fixed acquire/release sequence (one forward pass) settles
/// into an allocation-free steady state after the first call.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace { pool: Vec::new() }
    }

    /// A zero-filled buffer of length `len`, reusing pooled capacity.
    pub fn acquire(&mut self, len: usize) -> Vec<f64> {
        match self.pool.pop() {
            Some(mut buf) => {
                if buf.capacity() >= len {
                    WS_HITS.fetch_add(1, Ordering::Relaxed);
                } else {
                    WS_MISSES.fetch_add(1, Ordering::Relaxed);
                }
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                WS_MISSES.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }
}

/// Cloning a workspace yields an *empty* pool: replicas (training workers,
/// serve replicas) warm up their own buffers instead of copying scratch.
impl Clone for Workspace {
    fn clone(&self) -> Workspace {
        Workspace::new()
    }
}

/// How many output rows the GEMM/matvec kernels produce per pass over the
/// shared operand. Tiling the *output* rows lets one streamed read of `b`
/// (or `x`) feed several accumulator rows without touching the k-order.
const MR: usize = 4;

/// `out += a · b` for row-major `a (m×k)`, `b (k×n)`, `out (m×n)`,
/// skipping `a` elements that are exactly `0.0` — the same convention as
/// the naive `Tensor::matmul` loop this replaces. `out` must be
/// caller-initialized (zeros for a plain product, bias for a fused one).
///
/// Bit-identity: for every `out[i][j]` the terms `a[i][p] * b[p][j]` are
/// added in strictly ascending `p`, exactly like the naive loop; the MR-row
/// blocking only changes which *rows* share a pass over `b`.
pub fn gemm_acc(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "gemm out {m}x{n}");
    assert_eq!(a.len(), m * k, "gemm a {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm b {k}x{n}");
    if n == 0 || k == 0 {
        return;
    }
    let mut i = 0;
    while i + MR <= m {
        let (r0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            if v0 != 0.0 {
                for (o, &bv) in r0.iter_mut().zip(brow) {
                    *o += v0 * bv;
                }
            }
            if v1 != 0.0 {
                for (o, &bv) in r1.iter_mut().zip(brow) {
                    *o += v1 * bv;
                }
            }
            if v2 != 0.0 {
                for (o, &bv) in r2.iter_mut().zip(brow) {
                    *o += v2 * bv;
                }
            }
            if v3 != 0.0 {
                for (o, &bv) in r3.iter_mut().zip(brow) {
                    *o += v3 * bv;
                }
            }
        }
        i += MR;
    }
    while i < m {
        let orow = &mut out[i * n..(i + 1) * n];
        let arow = &a[i * k..(i + 1) * k];
        for (p, &v) in arow.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
        i += 1;
    }
}

/// `out += a · b` with **no** zero-skip: every term is added, matching the
/// paths that were previously built from `Tensor::matvec` per row (which
/// never skipped). Same strict ascending-`p` accumulation as [`gemm_acc`].
pub fn gemm_acc_dense(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "gemm out {m}x{n}");
    assert_eq!(a.len(), m * k, "gemm a {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm b {k}x{n}");
    if n == 0 || k == 0 {
        return;
    }
    let mut i = 0;
    while i + MR <= m {
        let (r0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            for (j, &bv) in brow.iter().enumerate() {
                r0[j] += v0 * bv;
                r1[j] += v1 * bv;
                r2[j] += v2 * bv;
                r3[j] += v3 * bv;
            }
        }
        i += MR;
    }
    while i < m {
        let orow = &mut out[i * n..(i + 1) * n];
        let arow = &a[i * k..(i + 1) * k];
        for (p, &v) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
        i += 1;
    }
}

/// `y = a · x` for row-major `a (m×k)`: each `y[i]` is the strict
/// left-to-right sum of `a[i][p] * x[p]`, bit-identical to the
/// `.zip().map().sum()` it replaces — including the signed zero of the
/// fold's `-0.0` neutral element (`Iterator::sum` for floats starts at
/// `-0.0`, so an all-negative-zero row sums to `-0.0`). MR rows share each
/// streamed pass over `x`.
pub fn matvec_into(y: &mut [f64], a: &[f64], x: &[f64], m: usize, k: usize) {
    assert_eq!(y.len(), m, "matvec y {m}");
    assert_eq!(a.len(), m * k, "matvec a {m}x{k}");
    assert_eq!(x.len(), k, "matvec x {k}");
    let mut i = 0;
    while i + MR <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (-0.0, -0.0, -0.0, -0.0);
        for (p, &xv) in x.iter().enumerate() {
            s0 += a0[p] * xv;
            s1 += a1[p] * xv;
            s2 += a2[p] * xv;
            s3 += a3[p] * xv;
        }
        y[i] = s0;
        y[i + 1] = s1;
        y[i + 2] = s2;
        y[i + 3] = s3;
        i += MR;
    }
    while i < m {
        y[i] = a[i * k..(i + 1) * k]
            .iter()
            .zip(x)
            .map(|(a, b)| a * b)
            .sum();
        i += 1;
    }
}

/// Lowers a length-`l`, `c`-channel sequence to its im2col matrix for a
/// width-`kw` same-padded 1-D convolution: row `t` holds the `kw`
/// concatenated input rows the kernel window sees at position `t`, with
/// out-of-range positions left at exactly `+0.0`.
///
/// `cols` must have length `l * kw * c`.
pub fn im2col_into(cols: &mut [f64], x: &[f64], l: usize, c: usize, kw: usize) {
    assert_eq!(cols.len(), l * kw * c, "im2col cols {l}x{}", kw * c);
    assert_eq!(x.len(), l * c, "im2col x {l}x{c}");
    let pad = (kw / 2) as isize;
    cols.iter_mut().for_each(|v| *v = 0.0);
    for t in 0..l {
        let drow = &mut cols[t * kw * c..(t + 1) * kw * c];
        for j in 0..kw {
            let src = t as isize + j as isize - pad;
            if src < 0 || src >= l as isize {
                continue;
            }
            let s = src as usize;
            drow[j * c..(j + 1) * c].copy_from_slice(&x[s * c..(s + 1) * c]);
        }
    }
}

/// `out (n×m) = transpose(a (m×n))`.
pub fn transpose_into(out: &mut [f64], a: &[f64], m: usize, n: usize) {
    assert_eq!(out.len(), m * n, "transpose out");
    assert_eq!(a.len(), m * n, "transpose a");
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

/// The pre-kernel-layer naive loops, frozen verbatim as reference
/// implementations for the bit-identity property tests. Not compiled into
/// release builds.
#[cfg(test)]
pub mod reference {
    /// The original `Tensor::matmul` triple loop (with its `a == 0.0` skip).
    pub fn matmul_naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// A dense (never-skipping) matmul built the way the old code built
    /// matrix products out of per-row `matvec` calls.
    pub fn matmul_dense_naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    /// The original `Tensor::matvec` (strict left-to-right fold per row).
    pub fn matvec_naive(a: &[f64], x: &[f64], m: usize, k: usize) -> Vec<f64> {
        (0..m)
            .map(|i| {
                a[i * k..(i + 1) * k]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// The original `Conv1d::forward` four-deep scalar loop: same padding,
    /// bias-initialized accumulator, out-of-range taps skipped.
    pub fn conv1d_forward_naive(
        x: &[f64],
        w: &[f64],
        bias: &[f64],
        l: usize,
        c_in: usize,
        c_out: usize,
        kw: usize,
    ) -> Vec<f64> {
        let pad = (kw / 2) as isize;
        let mut out = vec![0.0; l * c_out];
        for t in 0..l {
            for co in 0..c_out {
                let mut acc = bias[co];
                for j in 0..kw {
                    let src = t as isize + j as isize - pad;
                    if src < 0 || src >= l as isize {
                        continue;
                    }
                    let s = src as usize;
                    for ci in 0..c_in {
                        acc += x[s * c_in + ci] * w[co * (kw * c_in) + j * c_in + ci];
                    }
                }
                out[t * c_out + co] = acc;
            }
        }
        out
    }

    /// The original `Conv1d::backward` loops: `(db, dw, dx)` with the
    /// `dy == 0.0` skip and out-of-range taps skipped.
    #[allow(clippy::type_complexity)]
    pub fn conv1d_backward_naive(
        x: &[f64],
        w: &[f64],
        dy: &[f64],
        l: usize,
        c_in: usize,
        c_out: usize,
        kw: usize,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let pad = (kw / 2) as isize;
        let mut db = vec![0.0; c_out];
        let mut dw = vec![0.0; c_out * kw * c_in];
        let mut dx = vec![0.0; l * c_in];
        for t in 0..l {
            for co in 0..c_out {
                let g = dy[t * c_out + co];
                if g == 0.0 {
                    continue;
                }
                db[co] += g;
                for j in 0..kw {
                    let src = t as isize + j as isize - pad;
                    if src < 0 || src >= l as isize {
                        continue;
                    }
                    let s = src as usize;
                    let base = co * (kw * c_in) + j * c_in;
                    for ci in 0..c_in {
                        dw[base + ci] += g * x[s * c_in + ci];
                        dx[s * c_in + ci] += g * w[base + ci];
                    }
                }
            }
        }
        (db, dw, dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Values with exact zeros mixed in, so the skip conventions are
    /// actually exercised.
    fn value() -> BoxedStrategy<f64> {
        prop_oneof![
            2 => any::<f64>().prop_map(|v| (v - 0.5) * 4.0),
            1 => Just(0.0),
        ]
        .boxed()
    }

    fn matrix(rows: usize, cols: usize) -> BoxedStrategy<Vec<f64>> {
        let n = rows * cols;
        proptest::collection::vec(value(), n..n + 1).boxed()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn gemm_bit_identical_to_naive(dims in (0usize..9, 0usize..9, 0usize..9)) {
            let (m, k, n) = dims;
            let mut rng = TestRng::for_test(&format!("gemm-{m}-{k}-{n}"));
            let a = matrix(m, k).generate(&mut rng);
            let b = matrix(k, n).generate(&mut rng);
            let mut out = vec![0.0; m * n];
            gemm_acc(&mut out, &a, &b, m, k, n);
            prop_assert_eq!(bits(&out), bits(&reference::matmul_naive(&a, &b, m, k, n)));
        }

        #[test]
        fn dense_gemm_bit_identical_to_naive(dims in (0usize..9, 0usize..9, 0usize..9)) {
            let (m, k, n) = dims;
            let mut rng = TestRng::for_test(&format!("dgemm-{m}-{k}-{n}"));
            let a = matrix(m, k).generate(&mut rng);
            let b = matrix(k, n).generate(&mut rng);
            let mut out = vec![0.0; m * n];
            gemm_acc_dense(&mut out, &a, &b, m, k, n);
            prop_assert_eq!(bits(&out), bits(&reference::matmul_dense_naive(&a, &b, m, k, n)));
        }

        #[test]
        fn matvec_bit_identical_to_naive(dims in (0usize..11, 0usize..9)) {
            let (m, k) = dims;
            let mut rng = TestRng::for_test(&format!("matvec-{m}-{k}"));
            let a = matrix(m, k).generate(&mut rng);
            let x = matrix(k, 1).generate(&mut rng);
            let mut y = vec![0.0; m];
            matvec_into(&mut y, &a, &x, m, k);
            prop_assert_eq!(bits(&y), bits(&reference::matvec_naive(&a, &x, m, k)));
        }

        #[test]
        fn im2col_gemm_conv_bit_identical_to_naive(
            dims in (0usize..7, 1usize..5, 1usize..5, 0usize..3),
        ) {
            let (l, c_in, c_out, half) = dims;
            let kw = 2 * half + 1; // odd widths, matching Conv1d's contract
            let mut rng = TestRng::for_test(&format!("conv-{l}-{c_in}-{c_out}-{kw}"));
            let x = matrix(l, c_in).generate(&mut rng);
            let w = matrix(c_out, kw * c_in).generate(&mut rng);
            let bias = matrix(c_out, 1).generate(&mut rng);

            // Forward: bias-initialized output + skip-GEMM over the im2col
            // matrix, exactly how Conv1d::forward lowers it.
            let kc = kw * c_in;
            let mut cols = vec![0.0; l * kc];
            im2col_into(&mut cols, &x, l, c_in, kw);
            let mut wt = vec![0.0; kc * c_out];
            transpose_into(&mut wt, &w, c_out, kc);
            let mut out = vec![0.0; l * c_out];
            for t in 0..l {
                out[t * c_out..(t + 1) * c_out].copy_from_slice(&bias);
            }
            gemm_acc(&mut out, &cols, &wt, l, kc, c_out);
            let naive = reference::conv1d_forward_naive(&x, &w, &bias, l, c_in, c_out, kw);
            prop_assert_eq!(bits(&out), bits(&naive));

            // Backward dx: im2col over dy against the tap-reversed weights,
            // exactly how Conv1d::backward lowers it.
            let dy = matrix(l, c_out).generate(&mut rng);
            let kco = kw * c_out;
            let mut ycols = vec![0.0; l * kco];
            im2col_into(&mut ycols, &dy, l, c_out, kw);
            let mut wflip = vec![0.0; kco * c_in];
            for jr in 0..kw {
                let j = kw - 1 - jr;
                for co in 0..c_out {
                    wflip[(jr * c_out + co) * c_in..(jr * c_out + co + 1) * c_in]
                        .copy_from_slice(&w[co * kc + j * c_in..co * kc + (j + 1) * c_in]);
                }
            }
            let mut dx = vec![0.0; l * c_in];
            gemm_acc(&mut dx, &ycols, &wflip, l, kco, c_in);
            // Backward dw: dyᵀ · cols.
            let mut dyt = vec![0.0; c_out * l];
            transpose_into(&mut dyt, &dy, l, c_out);
            let mut dw = vec![0.0; c_out * kc];
            gemm_acc(&mut dw, &dyt, &cols, c_out, l, kc);
            let (_, ndw, ndx) = reference::conv1d_backward_naive(&x, &w, &dy, l, c_in, c_out, kw);
            prop_assert_eq!(bits(&dx), bits(&ndx));
            prop_assert_eq!(bits(&dw), bits(&ndw));
        }
    }

    #[test]
    fn workspace_reuses_capacity() {
        let (h0, m0) = workspace_counters();
        let mut ws = Workspace::new();
        let a = ws.acquire(64); // miss: empty pool
        ws.release(a);
        let b = ws.acquire(32); // hit: pooled capacity suffices
        assert!(b.iter().all(|&v| v == 0.0));
        ws.release(b);
        let (h1, m1) = workspace_counters();
        assert!(h1 - h0 >= 1, "expected a pool hit");
        assert!(m1 - m0 >= 1, "expected an initial miss");
    }

    #[test]
    fn workspace_clone_starts_empty() {
        let mut ws = Workspace::new();
        let buf = ws.acquire(16);
        ws.release(buf);
        let clone = ws.clone();
        assert!(clone.pool.is_empty());
    }

    #[test]
    fn im2col_zero_pads_edges() {
        // l=2, c=1, kw=3: window at t=0 pads the left tap, t=1 the right.
        let mut cols = vec![f64::NAN; 6];
        im2col_into(&mut cols, &[10.0, 20.0], 2, 1, 3);
        assert_eq!(cols, vec![0.0, 10.0, 20.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn empty_shapes_are_safe() {
        gemm_acc(&mut [], &[], &[], 0, 0, 0);
        gemm_acc_dense(&mut [], &[], &[], 0, 3, 0);
        matvec_into(&mut [], &[], &[], 0, 0);
        im2col_into(&mut [], &[], 0, 1, 3);
        let mut y = vec![f64::NAN; 2];
        matvec_into(&mut y, &[], &[], 2, 0);
        // k = 0: each row is an empty `.sum()`, which is -0.0 for floats.
        assert_eq!(bits(&y), bits(&[-0.0, -0.0]));
    }
}
