//! A minimal dense tensor (f64, row-major) sized for this project's
//! networks: 1-D/2-D shapes, matmul, transposition, elementwise ops.
//!
//! f64 keeps finite-difference gradient checks tight; at the scale of the
//! paper's models (embedding dim 30, dozens of channels) the cost is
//! negligible next to algorithmic clarity.

use std::fmt;

/// A dense row-major tensor of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Builds a tensor from a shape and data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A 1-D tensor from a slice.
    pub fn vector(data: &[f64]) -> Tensor {
        Tensor::from_vec(&[data.len()], data.to_vec())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a 2-D tensor.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() needs a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() needs a 2-D tensor");
        self.shape[1]
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// 2-D element access.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// 2-D element mutation.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c] += v;
    }

    /// A row of a 2-D tensor as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// A mutable row of a 2-D tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Matrix product of two 2-D tensors: `(m×k) · (k×n) → (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0; m * n];
        crate::kernels::gemm_acc(&mut out, &self.data, &other.data, m, k, n);
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix-vector product: `(m×k) · (k) → (m)`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(k, v.len());
        let mut y = vec![0.0; m];
        crate::kernels::matvec_into(&mut y, &self.data, v, m, k);
        y
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// Elementwise sum (shapes must match).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape);
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape);
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest element.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Changes the shape in place, reusing the existing allocation.
    /// Elements past the old length are zero; elements within it keep
    /// whatever they held, so callers must fully overwrite (or
    /// [`fill_zero`](Tensor::fill_zero)) before reading.
    pub fn resize(&mut self, shape: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        let n = shape.iter().product();
        self.data.resize(n, 0.0);
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&other.shape);
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reshapes to a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape to {shape:?} from {:?}",
            self.shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{:?}{:.4?}",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )
    }
}

/// Numerically stable softmax over a slice.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    softmax_into(xs, &mut out);
    out
}

/// [`softmax`] writing into a caller-owned buffer (same operation order,
/// so the results are bit-identical).
pub fn softmax_into(xs: &[f64], out: &mut Vec<f64>) {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(xs.iter().map(|&x| (x - m).exp()));
    let s: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= s;
    }
}

/// Stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let v = vec![1., 0., -1.];
        assert_eq!(a.matvec(&v), vec![-2., -2.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(&[1., -2., 3.]);
        let b = Tensor::vector(&[2., 2., 2.]);
        assert_eq!(a.add(&b).data(), &[3., 0., 5.]);
        assert_eq!(a.hadamard(&b).data(), &[2., -4., 6.]);
        assert_eq!(a.map(f64::abs).data(), &[1., 2., 3.]);
        assert_eq!(a.scale(2.0).data(), &[2., -4., 6.]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::vector(&[1., 1.]);
        a.axpy(0.5, &Tensor::vector(&[2., 4.]));
        assert_eq!(a.data(), &[2., 3.]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn rows_and_row_access() {
        let mut a = Tensor::zeros(&[2, 3]);
        a.row_mut(1).copy_from_slice(&[1., 2., 3.]);
        assert_eq!(a.row(1), &[1., 2., 3.]);
        a.add_at(1, 2, 1.0);
        assert_eq!(a.at(1, 2), 4.0);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
    }
}
