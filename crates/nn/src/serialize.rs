//! Parameter persistence.
//!
//! Models expose their parameters in a stable order via
//! [`crate::SequenceClassifier::params_mut`]; this module writes and reads
//! that flat parameter list in a simple line-oriented text format, so a
//! trained detector can be saved and reloaded without any serde dependency.
//!
//! Format:
//!
//! ```text
//! params <count>
//! param <rank> <dim0> <dim1> ...
//! <value> <value> ...            (one line per parameter, full precision)
//! ```

use crate::param::Param;
use crate::tensor::Tensor;

/// Serializes a parameter list.
pub fn save_params(params: &[&Param]) -> String {
    let mut out = String::new();
    out.push_str(&format!("params {}\n", params.len()));
    for p in params {
        let shape = p.w.shape();
        out.push_str(&format!("param {}", shape.len()));
        for d in shape {
            out.push_str(&format!(" {d}"));
        }
        out.push('\n');
        let values: Vec<String> = p.w.data().iter().map(|v| format!("{v:e}")).collect();
        out.push_str(&values.join(" "));
        out.push('\n');
    }
    out
}

/// Error produced when loading parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError(pub String);

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model load error: {}", self.0)
    }
}

impl std::error::Error for LoadError {}

/// Restores a parameter list written by [`save_params`] into an
/// already-constructed model's parameters (same architecture, same order).
///
/// # Errors
///
/// Returns [`LoadError`] when counts, shapes, or values do not line up.
pub fn load_params(params: &mut [&mut Param], text: &str) -> Result<(), LoadError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| LoadError("empty input".into()))?;
    let count: usize = head
        .strip_prefix("params ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| LoadError(format!("bad header `{head}`")))?;
    if count != params.len() {
        return Err(LoadError(format!(
            "parameter count mismatch: file has {count}, model has {}",
            params.len()
        )));
    }
    for (i, p) in params.iter_mut().enumerate() {
        let shape_line = lines
            .next()
            .ok_or_else(|| LoadError(format!("missing shape line for param {i}")))?;
        let mut parts = shape_line.split_whitespace();
        if parts.next() != Some("param") {
            return Err(LoadError(format!("bad shape line `{shape_line}`")));
        }
        let rank: usize = parts
            .next()
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| LoadError(format!("bad rank in `{shape_line}`")))?;
        let shape: Vec<usize> = parts
            .take(rank)
            .map(|d| {
                d.parse()
                    .map_err(|_| LoadError(format!("bad dim in `{shape_line}`")))
            })
            .collect::<Result<_, _>>()?;
        if shape != p.w.shape() {
            return Err(LoadError(format!(
                "shape mismatch for param {i}: file {shape:?}, model {:?}",
                p.w.shape()
            )));
        }
        let value_line = lines
            .next()
            .ok_or_else(|| LoadError(format!("missing values for param {i}")))?;
        let values: Vec<f64> = value_line
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| LoadError(format!("bad value `{v}`"))))
            .collect::<Result<_, _>>()?;
        if values.len() != p.w.len() {
            return Err(LoadError(format!(
                "value count mismatch for param {i}: {} vs {}",
                values.len(),
                p.w.len()
            )));
        }
        p.w = Tensor::from_vec(&shape, values);
        p.zero_grad();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CnnConfig, SequenceClassifier, SevulDetCnn};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_values() {
        let mut a = Param::zeros(&[2, 3]);
        a.w.data_mut()
            .copy_from_slice(&[1.5, -2.25, 0.0, 1e-10, 3e8, -0.125]);
        let b = Param::zeros(&[4]);
        let text = save_params(&[&a, &b]);
        let mut a2 = Param::zeros(&[2, 3]);
        let mut b2 = Param::zeros(&[4]);
        load_params(&mut [&mut a2, &mut b2], &text).unwrap();
        assert_eq!(a2.w.data(), a.w.data());
        assert_eq!(b2.w.data(), b.w.data());
    }

    #[test]
    fn whole_model_roundtrip_reproduces_outputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CnnConfig {
            channels: 6,
            ..CnnConfig::default()
        };
        let table = Tensor::full(&[12, 8], 0.1);
        let mut m1 = SevulDetCnn::new(table.clone(), cfg.clone(), &mut rng);
        let ids = [1usize, 3, 5, 7, 2];
        let y1 = m1.forward_logit(&ids, false, &mut rng);

        let text = save_params(&m1.params_mut().iter().map(|p| &**p).collect::<Vec<_>>());
        let mut rng2 = StdRng::seed_from_u64(99); // different init
        let mut m2 = SevulDetCnn::new(table, cfg, &mut rng2);
        load_params(&mut m2.params_mut(), &text).unwrap();
        let y2 = m2.forward_logit(&ids, false, &mut rng2);
        assert!((y1 - y2).abs() < 1e-12, "{y1} vs {y2}");
    }

    #[test]
    fn mismatches_are_rejected() {
        let a = Param::zeros(&[2]);
        let text = save_params(&[&a]);
        // Wrong count.
        let mut x = Param::zeros(&[2]);
        let mut y = Param::zeros(&[2]);
        assert!(load_params(&mut [&mut x, &mut y], &text).is_err());
        // Wrong shape.
        let mut z = Param::zeros(&[3]);
        assert!(load_params(&mut [&mut z], &text).is_err());
        // Garbage.
        assert!(load_params(&mut [&mut z], "nonsense").is_err());
    }
}
