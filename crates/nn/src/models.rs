//! The paper's networks, assembled from the layer library.
//!
//! * [`SevulDetCnn`] — the SEVulDet architecture (Fig. 2): token-attention
//!   embedding → conv → CBAM → conv → **spatial pyramid pooling** → dense
//!   256 → 64 → 1. Ablation flags reproduce the Table III variants (plain
//!   CNN, CNN-TokenATT, CNN-MultiATT) and a fixed-length variant for the
//!   Table II comparison.
//! * [`RnnNet`] — bidirectional LSTM/GRU classifiers with predefined time
//!   steps (the BLSTM/BGRU baselines; VulDeePecker ≈ BLSTM, SySeVR ≈ BGRU).

use crate::attention::{Cbam, CbamOrder, TokenAttention};
use crate::kernels::Workspace;
use crate::layers::{Conv1d, Dense, Dropout, Embedding, Relu, Spp};
use crate::param::Param;
use crate::rnn::{BiRnn, CellKind};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Common interface of all sequence classifiers in the zoo.
pub trait SequenceClassifier {
    /// Runs the network on a token-id sequence, returning the logit.
    fn forward_logit(&mut self, ids: &[usize], train: bool, rng: &mut StdRng) -> f64;
    /// Backpropagates a gradient on the logit.
    fn backward(&mut self, dlogit: f64);
    /// All trainable parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;
    /// Per-input-token attention weights of the last forward pass, if the
    /// architecture exposes them (Fig. 6 visualization).
    fn token_weights(&self) -> Option<Vec<f64>> {
        None
    }

    /// Runs the network on a batch of token-id sequences, returning one
    /// logit per sequence in input order. This is the inference entry point
    /// batched callers (the serving layer, bulk evaluation) go through; the
    /// default implementation streams the sequences through
    /// [`SequenceClassifier::forward_logit`] one by one, so the result is
    /// identical to unbatched calls by construction. Architectures with a
    /// genuinely vectorized path can override it under the same contract.
    fn forward_logits(&mut self, batch: &[Vec<usize>], train: bool, rng: &mut StdRng) -> Vec<f64> {
        batch
            .iter()
            .map(|ids| self.forward_logit(ids, train, rng))
            .collect()
    }

    /// Moves all accumulated gradients out (in `params_mut` order), leaving
    /// zeros behind. Together with [`SequenceClassifier::add_grads`] this is
    /// the exchange primitive of the data-parallel training engine: workers
    /// extract per-sample gradients from their model clones and the
    /// coordinator merges them in a deterministic order.
    fn take_grads(&mut self) -> Vec<Tensor> {
        self.params_mut()
            .into_iter()
            .map(Param::take_grad)
            .collect()
    }

    /// Adds a gradient set produced by [`SequenceClassifier::take_grads`]
    /// into this model's accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics when `grads` does not match the parameter list in length or
    /// shapes.
    fn add_grads(&mut self, grads: &[Tensor]) {
        let params = self.params_mut();
        assert_eq!(params.len(), grads.len(), "gradient set length mismatch");
        for (p, g) in params.into_iter().zip(grads) {
            p.add_grad(g);
        }
    }
}

/// Configuration of [`SevulDetCnn`].
#[derive(Debug, Clone)]
pub struct CnnConfig {
    /// Convolution channels (both layers).
    pub channels: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Enable token attention (Step IV).
    pub token_attention: bool,
    /// Enable CBAM channel+spatial attention (Step V).
    pub cbam: bool,
    /// CBAM reduction ratio.
    pub cbam_reduction: usize,
    /// CBAM spatial kernel width (paper: 7).
    pub cbam_kernel: usize,
    /// CBAM gate arrangement (the paper finds sequential better).
    pub cbam_order: CbamOrder,
    /// SPP pyramid levels (paper: 4/2/1).
    pub spp_bins: Vec<usize>,
    /// When set, inputs are truncated/zero-padded to this many tokens before
    /// the network — the fixed-length ablation. `None` = flexible length.
    pub fixed_len: Option<usize>,
    /// Dropout probability before the first dense layer.
    pub dropout: f64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            channels: 32,
            kernel: 3,
            token_attention: true,
            cbam: true,
            cbam_reduction: 4,
            cbam_kernel: 7,
            cbam_order: CbamOrder::Sequential,
            spp_bins: vec![4, 2, 1],
            fixed_len: None,
            dropout: 0.2,
        }
    }
}

impl CnnConfig {
    /// The Table III "CNN" ablation: no attention at all.
    pub fn plain() -> Self {
        CnnConfig {
            token_attention: false,
            cbam: false,
            ..CnnConfig::default()
        }
    }

    /// The Table III "CNN-TokenATT" ablation: token attention only.
    pub fn token_att_only() -> Self {
        CnnConfig {
            token_attention: true,
            cbam: false,
            ..CnnConfig::default()
        }
    }
}

/// The SEVulDet network (Fig. 2, steps IV-V).
#[derive(Debug, Clone)]
pub struct SevulDetCnn {
    config: CnnConfig,
    emb: Embedding,
    tok_att: Option<TokenAttention>,
    conv1: Conv1d,
    relu1: Relu,
    cbam: Option<Cbam>,
    conv2: Conv1d,
    relu2: Relu,
    spp: Spp,
    fc1: Dense,
    relu_fc: Relu,
    drop: Dropout,
    fc2: Dense,
    relu_fc2: Relu,
    fc3: Dense,
    cache_padded: Vec<usize>,
    // Reused activation storage: `act_a` always holds the current
    // activation; layers write into `act_b` and the two are swapped.
    // Cloning a model starts it with fresh (empty) buffers.
    ws: Workspace,
    act_a: Tensor,
    act_b: Tensor,
    vec_a: Vec<f64>,
    vec_b: Vec<f64>,
}

impl SevulDetCnn {
    /// Builds the network on top of a pre-trained `(V × D)` embedding table.
    pub fn new(table: Tensor, config: CnnConfig, rng: &mut StdRng) -> SevulDetCnn {
        let d = table.cols();
        let c = config.channels;
        let spp = Spp::new(config.spp_bins.clone());
        let pooled = spp.out_len(c);
        SevulDetCnn {
            emb: Embedding::from_table(table),
            tok_att: config
                .token_attention
                .then(|| TokenAttention::new(d, d, rng)),
            conv1: Conv1d::new(d, c, config.kernel, rng),
            relu1: Relu::new(),
            cbam: config.cbam.then(|| {
                Cbam::with_order(
                    c,
                    config.cbam_reduction,
                    config.cbam_kernel,
                    config.cbam_order,
                    rng,
                )
            }),
            conv2: Conv1d::new(c, c, config.kernel, rng),
            relu2: Relu::new(),
            spp,
            fc1: Dense::new(pooled, 256, rng),
            relu_fc: Relu::new(),
            drop: Dropout::new(config.dropout),
            fc2: Dense::new(256, 64, rng),
            relu_fc2: Relu::new(),
            fc3: Dense::new(64, 1, rng),
            cache_padded: Vec::new(),
            ws: Workspace::new(),
            act_a: Tensor::zeros(&[0, 0]),
            act_b: Tensor::zeros(&[0, 0]),
            vec_a: Vec::new(),
            vec_b: Vec::new(),
            config,
        }
    }

    /// The configuration this network was built with (the precision engine
    /// reads it to mirror the architecture).
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// The CBAM `(channel, spatial)` gates captured by the last forward pass,
    /// or `None` when the network has no CBAM block (or never ran).
    pub fn cbam_gates(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        let cbam = self.cbam.as_ref()?;
        match (cbam.last_channel_gate(), cbam.last_spatial_gate()) {
            (Some(c), Some(s)) => Some((c.to_vec(), s.to_vec())),
            _ => None,
        }
    }

    fn prepare_ids_into(&mut self, ids: &[usize]) {
        self.cache_padded.clear();
        match self.config.fixed_len {
            Some(l) => {
                self.cache_padded.extend(ids.iter().copied().take(l));
                // A degenerate fixed length of 0 still pads to one token so
                // every downstream layer sees a non-empty sequence.
                self.cache_padded.resize(l.max(1), 0);
            }
            None => {
                if ids.is_empty() {
                    self.cache_padded.push(0);
                } else {
                    self.cache_padded.extend_from_slice(ids);
                }
            }
        }
    }
}

impl SequenceClassifier for SevulDetCnn {
    fn forward_logit(&mut self, ids: &[usize], train: bool, rng: &mut StdRng) -> f64 {
        let _fwd = sevuldet_trace::span!("nn.forward");
        {
            let _t = sevuldet_trace::span!("nn.embedding");
            self.prepare_ids_into(ids);
            self.emb.forward_into(&self.cache_padded, &mut self.act_a);
        }
        if let Some(att) = &mut self.tok_att {
            let _t = sevuldet_trace::span!("nn.token_att");
            att.forward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        {
            let _t = sevuldet_trace::span!("nn.conv1");
            self.conv1
                .forward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
            self.relu1.forward_inplace(&mut self.act_a);
        }
        if let Some(cbam) = &mut self.cbam {
            let _t = sevuldet_trace::span!("nn.cbam");
            cbam.forward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        {
            let _t = sevuldet_trace::span!("nn.conv2");
            self.conv2
                .forward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
            self.relu2.forward_inplace(&mut self.act_a);
        }
        {
            let _t = sevuldet_trace::span!("nn.spp");
            self.spp.forward_into(&self.act_a, &mut self.vec_a);
        }
        let _t = sevuldet_trace::span!("nn.dense");
        self.fc1.forward_into(&self.vec_a, &mut self.vec_b);
        self.relu_fc.forward_vec_inplace(&mut self.vec_b);
        self.drop.forward_inplace(&mut self.vec_b, train, rng);
        self.fc2.forward_into(&self.vec_b, &mut self.vec_a);
        self.relu_fc2.forward_vec_inplace(&mut self.vec_a);
        self.fc3.forward_into(&self.vec_a, &mut self.vec_b);
        self.vec_b[0]
    }

    fn backward(&mut self, dlogit: f64) {
        let _bwd = sevuldet_trace::span!("nn.backward");
        {
            let _t = sevuldet_trace::span!("nn.dense");
            self.fc3.backward_into(&[dlogit], &mut self.vec_a);
            self.relu_fc2.backward_vec_inplace(&mut self.vec_a);
            self.fc2.backward_into(&self.vec_a, &mut self.vec_b);
            self.drop.backward_inplace(&mut self.vec_b);
            self.relu_fc.backward_vec_inplace(&mut self.vec_b);
            self.fc1.backward_into(&self.vec_b, &mut self.vec_a);
        }
        {
            let _t = sevuldet_trace::span!("nn.spp");
            self.spp.backward_into(&self.vec_a, &mut self.act_a);
        }
        {
            let _t = sevuldet_trace::span!("nn.conv2");
            self.relu2.backward_inplace(&mut self.act_a);
            self.conv2
                .backward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        if let Some(cbam) = &mut self.cbam {
            let _t = sevuldet_trace::span!("nn.cbam");
            cbam.backward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        {
            let _t = sevuldet_trace::span!("nn.conv1");
            self.relu1.backward_inplace(&mut self.act_a);
            self.conv1
                .backward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        if let Some(att) = &mut self.tok_att {
            let _t = sevuldet_trace::span!("nn.token_att");
            att.backward_into(&self.act_a, &mut self.act_b, &mut self.ws);
            std::mem::swap(&mut self.act_a, &mut self.act_b);
        }
        let _t = sevuldet_trace::span!("nn.embedding");
        self.emb.backward(&self.act_a);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> = vec![&mut self.emb.table];
        if let Some(att) = &mut self.tok_att {
            v.extend(att.params_mut());
        }
        v.extend(self.conv1.params_mut());
        if let Some(cbam) = &mut self.cbam {
            v.extend(cbam.params_mut());
        }
        v.extend(self.conv2.params_mut());
        v.extend(self.fc1.params_mut());
        v.extend(self.fc2.params_mut());
        v.extend(self.fc3.params_mut());
        v
    }

    fn token_weights(&self) -> Option<Vec<f64>> {
        self.tok_att
            .as_ref()
            .and_then(|a| a.last_weights())
            .map(<[f64]>::to_vec)
    }
}

/// A bidirectional RNN classifier with predefined time steps (Definition 8's
/// fixed-length truncation/padding happens inside `forward_logit`).
#[derive(Debug, Clone)]
pub struct RnnNet {
    emb: Embedding,
    rnn: BiRnn,
    fc1: Dense,
    relu: Relu,
    drop: Dropout,
    fc2: Dense,
    /// Predefined time steps τ.
    pub time_steps: usize,
    ids_buf: Vec<usize>,
    act: Tensor,
    hvec: Vec<f64>,
    vec_a: Vec<f64>,
    vec_b: Vec<f64>,
}

impl RnnNet {
    /// Builds a BLSTM/BGRU classifier over a pre-trained embedding table.
    pub fn new(
        table: Tensor,
        kind: CellKind,
        hidden: usize,
        time_steps: usize,
        dropout: f64,
        rng: &mut StdRng,
    ) -> RnnNet {
        let d = table.cols();
        RnnNet {
            emb: Embedding::from_table(table),
            rnn: BiRnn::new(kind, d, hidden, rng),
            fc1: Dense::new(2 * hidden, 64, rng),
            relu: Relu::new(),
            drop: Dropout::new(dropout),
            fc2: Dense::new(64, 1, rng),
            time_steps,
            ids_buf: Vec::new(),
            act: Tensor::zeros(&[0, 0]),
            hvec: Vec::new(),
            vec_a: Vec::new(),
            vec_b: Vec::new(),
        }
    }
}

impl SequenceClassifier for RnnNet {
    fn forward_logit(&mut self, ids: &[usize], train: bool, rng: &mut StdRng) -> f64 {
        // Fixed time steps à la Definition 8: truncate at τ. Short inputs
        // are *masked* rather than zero-padded (running the cells over
        // hundreds of pad embeddings would corrupt the final state — Keras
        // masking semantics).
        let _fwd = sevuldet_trace::span!("nn.forward");
        self.ids_buf.clear();
        self.ids_buf
            .extend(ids.iter().copied().take(self.time_steps));
        if self.ids_buf.is_empty() {
            self.ids_buf.push(0);
        }
        self.emb.forward_into(&self.ids_buf, &mut self.act);
        self.rnn.forward_into(&self.act, &mut self.hvec);
        self.fc1.forward_into(&self.hvec, &mut self.vec_a);
        self.relu.forward_vec_inplace(&mut self.vec_a);
        self.drop.forward_inplace(&mut self.vec_a, train, rng);
        self.fc2.forward_into(&self.vec_a, &mut self.vec_b);
        self.vec_b[0]
    }

    fn backward(&mut self, dlogit: f64) {
        let _bwd = sevuldet_trace::span!("nn.backward");
        self.fc2.backward_into(&[dlogit], &mut self.vec_a);
        self.drop.backward_inplace(&mut self.vec_a);
        self.relu.backward_vec_inplace(&mut self.vec_a);
        self.fc1.backward_into(&self.vec_a, &mut self.vec_b);
        self.rnn.backward_into(&self.vec_b, &mut self.act);
        self.emb.backward(&self.act);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> = vec![&mut self.emb.table];
        v.extend(self.rnn.params_mut());
        v.extend(self.fc1.params_mut());
        v.extend(self.fc2.params_mut());
        v
    }

    fn token_weights(&self) -> Option<Vec<f64>> {
        // The RNN baselines have no attention layer; hidden-state delta
        // norms from the bidirectional pass stand in as the Fig. 6
        // relevance signal (truncated at τ like the forward pass itself).
        let s = self.rnn.token_saliency();
        (!s.is_empty()).then_some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::bce_with_logits;
    use crate::optim::Adam;
    use rand::{Rng, SeedableRng};

    fn table(v: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[v, d],
            (0..v * d).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        )
    }

    /// A tiny synthetic task: sequences containing token 5 adjacent to token
    /// 6 are positive. Checks a model can learn it.
    fn learnable<M: SequenceClassifier>(model: &mut M, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(0.01);
        let gen = |rng: &mut StdRng| {
            let pos = rng.gen_bool(0.5);
            let len = rng.gen_range(4..12usize);
            let mut ids: Vec<usize> = (0..len).map(|_| rng.gen_range(1..5)).collect();
            if pos {
                let at = rng.gen_range(0..len - 1);
                ids[at] = 5;
                ids[at + 1] = 6;
            }
            (ids, pos)
        };
        for _ in 0..600 {
            let (ids, pos) = gen(&mut rng);
            let logit = model.forward_logit(&ids, true, &mut rng);
            let (_, dl) = bce_with_logits(logit, if pos { 1.0 } else { 0.0 });
            model.backward(dl);
            opt.step(&mut model.params_mut());
        }
        let mut correct = 0;
        for _ in 0..100 {
            let (ids, pos) = gen(&mut rng);
            let logit = model.forward_logit(&ids, false, &mut rng);
            if (logit > 0.0) == pos {
                correct += 1;
            }
        }
        correct as f64 / 100.0
    }

    #[test]
    fn batched_forward_matches_single_inference() {
        let mut rng = StdRng::seed_from_u64(91);
        let cfg = CnnConfig {
            channels: 8,
            ..CnnConfig::default()
        };
        let mut m = SevulDetCnn::new(table(8, 8, 92), cfg, &mut rng);
        let batch: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![5, 6, 1, 2], vec![4], vec![1; 20]];
        let batched = m.forward_logits(&batch, false, &mut rng);
        for (ids, &logit) in batch.iter().zip(&batched) {
            let solo = m.forward_logit(ids, false, &mut rng);
            assert_eq!(solo, logit, "batching changed the logit for {ids:?}");
        }
    }

    #[test]
    fn sevuldet_cnn_learns_adjacent_pattern() {
        let mut rng = StdRng::seed_from_u64(250);
        let cfg = CnnConfig {
            channels: 8,
            ..CnnConfig::default()
        };
        let mut m = SevulDetCnn::new(table(8, 8, 251), cfg, &mut rng);
        let acc = learnable(&mut m, 252);
        assert!(acc >= 0.85, "accuracy {acc}");
    }

    #[test]
    fn plain_cnn_learns_too() {
        let mut rng = StdRng::seed_from_u64(53);
        let cfg = CnnConfig {
            channels: 8,
            ..CnnConfig::plain()
        };
        let mut m = SevulDetCnn::new(table(8, 8, 54), cfg, &mut rng);
        let acc = learnable(&mut m, 55);
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn blstm_learns_adjacent_pattern() {
        let mut rng = StdRng::seed_from_u64(56);
        let mut m = RnnNet::new(table(8, 8, 57), CellKind::Lstm, 12, 16, 0.0, &mut rng);
        let acc = learnable(&mut m, 58);
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn bgru_learns_adjacent_pattern() {
        let mut rng = StdRng::seed_from_u64(59);
        let mut m = RnnNet::new(table(8, 8, 60), CellKind::Gru, 12, 16, 0.0, &mut rng);
        let acc = learnable(&mut m, 61);
        assert!(acc >= 0.8, "accuracy {acc}");
    }

    #[test]
    fn cnn_handles_variable_and_extreme_lengths() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut m = SevulDetCnn::new(table(8, 6, 63), CnnConfig::default(), &mut rng);
        for len in [1usize, 2, 7, 100, 700] {
            let ids: Vec<usize> = (0..len).map(|i| i % 8).collect();
            let logit = m.forward_logit(&ids, false, &mut rng);
            assert!(logit.is_finite(), "len={len}");
        }
        // Empty input is padded to one token rather than panicking.
        assert!(m.forward_logit(&[], false, &mut rng).is_finite());
    }

    #[test]
    fn fixed_len_variant_truncates() {
        let mut rng = StdRng::seed_from_u64(64);
        let cfg = CnnConfig {
            fixed_len: Some(4),
            token_attention: true,
            ..CnnConfig::default()
        };
        let mut m = SevulDetCnn::new(table(8, 6, 65), cfg, &mut rng);
        let _ = m.forward_logit(&[1, 2, 3, 4, 5, 6, 7], false, &mut rng);
        assert_eq!(m.token_weights().unwrap().len(), 4);
    }

    #[test]
    fn token_weights_exposed_only_with_attention() {
        let mut rng = StdRng::seed_from_u64(66);
        let mut m = SevulDetCnn::new(table(8, 6, 67), CnnConfig::plain(), &mut rng);
        let _ = m.forward_logit(&[1, 2], false, &mut rng);
        assert!(m.token_weights().is_none());
        let mut m = SevulDetCnn::new(table(8, 6, 68), CnnConfig::default(), &mut rng);
        let _ = m.forward_logit(&[1, 2], false, &mut rng);
        assert_eq!(m.token_weights().unwrap().len(), 2);
    }

    #[test]
    fn take_and_add_grads_reproduce_direct_accumulation() {
        // Extracting each sample's gradient and merging in order matches
        // direct accumulation up to summation-order rounding (layers that
        // accumulate per-position associate differently); the trainer's
        // bit-identity guarantee is across jobs counts, where the merge
        // order — and thus the summation tree — is exactly the same.
        let mut rng = StdRng::seed_from_u64(71);
        let mut direct = SevulDetCnn::new(table(8, 6, 72), CnnConfig::default(), &mut rng);
        let mut staged = direct.clone();
        let samples: [(&[usize], f64); 2] = [(&[1, 5, 6, 2], 1.0), (&[3, 2, 4], 0.0)];

        for (ids, label) in samples {
            let logit = direct.forward_logit(ids, false, &mut rng);
            let (_, dl) = bce_with_logits(logit, label);
            direct.backward(dl);
        }

        let mut extracted = Vec::new();
        for (ids, label) in samples {
            let logit = staged.forward_logit(ids, false, &mut rng);
            let (_, dl) = bce_with_logits(logit, label);
            staged.backward(dl);
            extracted.push(staged.take_grads());
        }
        for grads in &extracted {
            staged.add_grads(grads);
        }

        for (a, b) in direct.params_mut().iter().zip(staged.params_mut().iter()) {
            for (&x, &y) in a.g.data().iter().zip(b.g.data()) {
                let scale = x.abs().max(y.abs()).max(1e-30);
                assert!(
                    (x - y).abs() / scale < 1e-9,
                    "merged grad diverged: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn take_grads_leaves_zeros() {
        let mut rng = StdRng::seed_from_u64(73);
        let mut m = SevulDetCnn::new(table(8, 6, 74), CnnConfig::default(), &mut rng);
        let logit = m.forward_logit(&[1, 2, 3], false, &mut rng);
        let (_, dl) = bce_with_logits(logit, 1.0);
        m.backward(dl);
        let grads = m.take_grads();
        assert!(grads.iter().any(|g| g.data().iter().any(|&v| v != 0.0)));
        for p in m.params_mut() {
            assert!(p.g.data().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn degenerate_fixed_len_zero_still_runs() {
        let mut rng = StdRng::seed_from_u64(75);
        let cfg = CnnConfig {
            fixed_len: Some(0),
            ..CnnConfig::default()
        };
        let mut m = SevulDetCnn::new(table(8, 6, 76), cfg, &mut rng);
        assert!(m.forward_logit(&[], false, &mut rng).is_finite());
        assert!(m.forward_logit(&[1, 2, 3], false, &mut rng).is_finite());
    }

    #[test]
    fn whole_model_gradient_direction_reduces_loss() {
        // One SGD step on a single example must reduce that example's loss.
        let mut rng = StdRng::seed_from_u64(69);
        let mut m = SevulDetCnn::new(table(8, 6, 70), CnnConfig::default(), &mut rng);
        let ids = [1usize, 5, 6, 2, 3];
        let logit0 = m.forward_logit(&ids, false, &mut rng);
        let (loss0, dl) = bce_with_logits(logit0, 1.0);
        m.forward_logit(&ids, false, &mut rng);
        m.backward(dl);
        let mut opt = crate::optim::Sgd::new(0.05, 0.0);
        opt.step(&mut m.params_mut());
        let logit1 = m.forward_logit(&ids, false, &mut rng);
        let (loss1, _) = bce_with_logits(logit1, 1.0);
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }
}
