//! Precision-tiered inference engine for the SPP-CNN.
//!
//! [`FastCnn`] is an inference-only mirror of [`crate::models::SevulDetCnn`]
//! whose weights are converted **once** at load time: to f32 for the f32
//! tier, and additionally to symmetric per-tensor int8 for the int8 tier.
//! The forward pass mirrors the f64 graph layer for layer (same padding,
//! same SPP segment boundaries, same gate formulas), but runs the five hot
//! GEMM/matvec products through [`crate::kernels_f32`], so it makes no
//! bit-identity promise — the f64 path in `models.rs` remains the exact
//! training/reference backend.
//!
//! Int8 quantizes the five large products (conv1, conv2, fc1, fc2, fc3);
//! everything in between (attention gates, CBAM, SPP, activations) stays
//! f32, which keeps the tier's error dominated by the two rounding steps of
//! each quantized product. Activation scales come from a calibration batch
//! recorded at export time (see [`calibrate`]) and persisted as the
//! optional v3 section of the sealed model format.

use std::fmt;
use std::str::FromStr;

use crate::attention::CbamOrder;
use crate::kernels_f32 as kf;
use crate::models::{SequenceClassifier, SevulDetCnn};
use crate::param::Param;
use crate::tensor::Tensor;

/// Number of quantized activation sites: conv1 input columns, conv2 input
/// columns, and the fc1/fc2/fc3 input vectors. A persisted calibration
/// section must carry exactly this many scales.
pub const QUANT_SITES: usize = 5;

/// The compute tier a detector runs its forward pass on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Bit-exact f64 reference path (training and default inference).
    F64,
    /// f32 weights/activations with SIMD kernels.
    F32,
    /// Int8 weights + quantized activations at the five large products.
    Int8,
}

impl Precision {
    /// The CLI / metrics-label spelling of the tier.
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Precision, String> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision '{other}' (expected f64, f32, or int8)"
            )),
        }
    }
}

/// Why a fast-tier engine could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// int8 was requested but the model carries no calibration scales
    /// (saved before the v3 format, or never calibrated) — re-export the
    /// model to embed them.
    MissingCalibration,
    /// A calibration section was present but had the wrong number of
    /// scales for this engine.
    BadCalibration {
        /// How many scales the section carried (expected [`QUANT_SITES`]).
        got: usize,
    },
    /// `Precision::F64` was requested; the engine only implements the fast
    /// tiers — the f64 path is the model itself.
    NotAFastTier,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MissingCalibration => write!(
                f,
                "model has no int8 calibration scales; re-export it with a v3-format save"
            ),
            EngineError::BadCalibration { got } => write!(
                f,
                "calibration section has {got} scales, expected {QUANT_SITES}"
            ),
            EngineError::NotAFastTier => {
                write!(f, "f64 is the reference path, not an engine tier")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Debug, Clone)]
struct QuantWeights {
    q: Vec<i8>,
    scale: f32,
}

fn quantize_weights(w: &[f32]) -> QuantWeights {
    let scale = kf::max_abs_f32(w) / 127.0;
    let mut q = Vec::new();
    kf::quantize_i8(&mut q, w, scale);
    QuantWeights { q, scale }
}

#[derive(Debug, Clone)]
struct TokAttF32 {
    /// Pre-transposed projection, `(D × A)`.
    wt: Vec<f32>,
    b: Vec<f32>,
    u_w: Vec<f32>,
    a_dim: usize,
}

#[derive(Debug, Clone)]
struct ConvF32 {
    /// Pre-transposed weights, `(kw·c_in × c_out)`.
    wt: Vec<f32>,
    bias: Vec<f32>,
    c_in: usize,
    c_out: usize,
    kw: usize,
    q: Option<QuantWeights>,
}

#[derive(Debug, Clone)]
struct DenseF32 {
    /// Row-major `(rows × cols)`, as stored.
    w: Vec<f32>,
    b: Vec<f32>,
    rows: usize,
    cols: usize,
    q: Option<QuantWeights>,
}

#[derive(Debug, Clone)]
struct CbamF32 {
    order: CbamOrder,
    w0: Vec<f32>,
    b0: Vec<f32>,
    w1: Vec<f32>,
    b1: Vec<f32>,
    wc: Vec<f32>,
    bc: f32,
    h: usize,
    c: usize,
    k: usize,
}

/// The fast-tier inference engine: f32 (optionally int8-quantized) mirror
/// of the SPP-CNN forward pass. Cloning clones weights and (small) scratch,
/// so serve replicas and scan worker shards each get an independent engine.
#[derive(Debug, Clone)]
pub struct FastCnn {
    precision: Precision,
    fixed_len: Option<usize>,
    spp_bins: Vec<usize>,
    emb: Vec<f32>,
    vocab: usize,
    d: usize,
    tok: Option<TokAttF32>,
    conv1: ConvF32,
    cbam: Option<CbamF32>,
    conv2: ConvF32,
    fc1: DenseF32,
    fc2: DenseF32,
    fc3: DenseF32,
    act_scales: Option<[f32; QUANT_SITES]>,
    recording: bool,
    maxabs: [f32; QUANT_SITES],
    // Scratch, reused across forward calls.
    padded: Vec<usize>,
    x: Vec<f32>,
    y: Vec<f32>,
    cols: Vec<f32>,
    qa: Vec<i8>,
    qacc: Vec<i32>,
    va: Vec<f32>,
    vb: Vec<f32>,
    scores: Vec<f32>,
    alpha: Vec<f32>,
}

fn to_f32(t: &Tensor) -> Vec<f32> {
    t.data().iter().map(|&v| v as f32).collect()
}

fn transposed_f32(p: &Param, rows: usize, cols: usize) -> Vec<f32> {
    let src = to_f32(&p.w);
    let mut out = vec![0.0f32; rows * cols];
    kf::transpose_f32(&mut out, &src, rows, cols);
    out
}

fn sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softmax_f32(scores: &[f32], out: &mut Vec<f32>) {
    out.clear();
    if scores.is_empty() {
        return;
    }
    let mx = scores.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    out.extend(scores.iter().map(|&v| (v - mx).exp()));
    let sum: f32 = out.iter().sum();
    for v in out.iter_mut() {
        *v /= sum;
    }
}

fn relu_f32(v: &mut [f32]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// The activation scale actually used to quantize one tensor: the persisted
/// calibration scale, widened only when the live tensor's range exceeds
/// what calibration saw. Without this guard an activation outside the
/// calibrated envelope saturates at ±127, which can silently collapse a
/// strongly negative logit to ~0 — a catastrophic, input-dependent error.
/// With it the persisted scale is the common deterministic path and the
/// widening engages only on out-of-envelope inputs.
fn effective_scale(calibrated: f32, live: &[f32]) -> f32 {
    let m = kf::max_abs_f32(live);
    if m > calibrated * 127.0 {
        m / 127.0
    } else {
        calibrated
    }
}

/// One im2col + GEMM convolution at the engine's tier. `out` ends up
/// `(l × c_out)` bias-initialized plus the product; `cols` keeps the im2col
/// matrix (the caller records its max-abs when calibrating).
#[allow(clippy::too_many_arguments)]
fn conv_forward(
    conv: &ConvF32,
    act_scale: Option<f32>,
    x: &[f32],
    l: usize,
    cols: &mut Vec<f32>,
    qa: &mut Vec<i8>,
    qacc: &mut Vec<i32>,
    out: &mut Vec<f32>,
) {
    let kc = conv.kw * conv.c_in;
    cols.clear();
    cols.resize(l * kc, 0.0);
    kf::im2col_f32(cols, x, l, conv.c_in, conv.kw);
    out.clear();
    out.resize(l * conv.c_out, 0.0);
    for t in 0..l {
        out[t * conv.c_out..(t + 1) * conv.c_out].copy_from_slice(&conv.bias);
    }
    match (&conv.q, act_scale) {
        (Some(qw), Some(sx)) => {
            let sx = effective_scale(sx, cols);
            kf::quantize_i8(qa, cols, sx);
            qacc.clear();
            qacc.resize(l * conv.c_out, 0);
            kf::gemm_i8(qacc, qa, &qw.q, l, kc, conv.c_out);
            let f = sx * qw.scale;
            for (o, &acc) in out.iter_mut().zip(qacc.iter()) {
                *o += acc as f32 * f;
            }
        }
        _ => kf::gemm_f32(out, cols, &conv.wt, l, kc, conv.c_out),
    }
}

/// One dense layer at the engine's tier: `out = W·x + b`.
fn dense_forward(
    dn: &DenseF32,
    act_scale: Option<f32>,
    x: &[f32],
    qa: &mut Vec<i8>,
    qacc: &mut Vec<i32>,
    out: &mut Vec<f32>,
) {
    out.clear();
    out.resize(dn.rows, 0.0);
    match (&dn.q, act_scale) {
        (Some(qw), Some(sx)) => {
            let sx = effective_scale(sx, x);
            kf::quantize_i8(qa, x, sx);
            qacc.clear();
            qacc.resize(dn.rows, 0);
            kf::matvec_i8(qacc, &qw.q, qa, dn.rows, dn.cols);
            let f = sx * qw.scale;
            for ((o, &acc), &b) in out.iter_mut().zip(qacc.iter()).zip(&dn.b) {
                *o = acc as f32 * f + b;
            }
        }
        _ => {
            kf::matvec_f32(out, &dn.w, x, dn.rows, dn.cols);
            for (o, &b) in out.iter_mut().zip(&dn.b) {
                *o += b;
            }
        }
    }
}

/// The CBAM gates in f32: channel MLP gate then spatial conv gate, same
/// formulas and the same sequential/parallel source convention as the f64
/// block. Small per-call vectors (≤ channel count) are allocated locally —
/// the conv GEMMs dominate this path. Input is `x (l×c)`; output lands in
/// `y`.
fn cbam_forward(cb: &CbamF32, x: &[f32], y: &mut Vec<f32>, l: usize) {
    let (c, h, k) = (cb.c, cb.h, cb.k);
    let mut avg = vec![0.0f32; c];
    let mut mx = vec![f32::NEG_INFINITY; c];
    for t in 0..l {
        for ch in 0..c {
            let v = x[t * c + ch];
            avg[ch] += v;
            if v > mx[ch] {
                mx[ch] = v;
            }
        }
    }
    for a in avg.iter_mut() {
        *a /= l as f32;
    }
    let mlp = |s: &[f32]| -> Vec<f32> {
        let mut pre = vec![0.0f32; h];
        kf::matvec_f32(&mut pre, &cb.w0, s, h, c);
        for (p, &b) in pre.iter_mut().zip(&cb.b0) {
            *p = (*p + b).max(0.0);
        }
        let mut o = vec![0.0f32; c];
        kf::matvec_f32(&mut o, &cb.w1, &pre, c, h);
        for (p, &b) in o.iter_mut().zip(&cb.b1) {
            *p += b;
        }
        o
    };
    let oa = mlp(&avg);
    let om = mlp(&mx);
    let mc: Vec<f32> = oa
        .iter()
        .zip(&om)
        .map(|(a, m)| sigmoid_f32(a + m))
        .collect();
    y.clear();
    y.resize(l * c, 0.0);
    for t in 0..l {
        for ch in 0..c {
            y[t * c + ch] = x[t * c + ch] * mc[ch];
        }
    }
    let mut sa = vec![0.0f32; l];
    let mut sm = vec![f32::NEG_INFINITY; l];
    {
        let src: &[f32] = if cb.order == CbamOrder::Sequential {
            y
        } else {
            x
        };
        for t in 0..l {
            for ch in 0..c {
                let v = src[t * c + ch];
                sa[t] += v;
                if v > sm[t] {
                    sm[t] = v;
                }
            }
            sa[t] /= c as f32;
        }
    }
    let pad = (k / 2) as isize;
    for t in 0..l {
        let mut acc = cb.bc;
        for j in 0..k {
            let src = t as isize + j as isize - pad;
            if src < 0 || src >= l as isize {
                continue;
            }
            let s = src as usize;
            acc += cb.wc[j * 2] * sa[s] + cb.wc[j * 2 + 1] * sm[s];
        }
        let ms = sigmoid_f32(acc);
        for ch in 0..c {
            y[t * c + ch] *= ms;
        }
    }
}

fn spp_forward(bins: &[usize], x: &[f32], l: usize, c: usize, out: &mut Vec<f32>) {
    let total: usize = bins.iter().sum();
    out.clear();
    out.resize(total * c, 0.0);
    if l == 0 {
        return;
    }
    let mut slot = 0;
    for &b in bins {
        for seg in 0..b {
            // Same integer segment boundaries as the f64 Spp layer.
            let start = (seg * l) / b;
            let mut end = ((seg + 1) * l) / b;
            if end <= start {
                end = (start + 1).min(l);
            }
            let start = start.min(l - 1);
            for ch in 0..c {
                let mut best = f32::NEG_INFINITY;
                for t in start..end.max(start + 1) {
                    let v = x[t * c + ch];
                    if v > best {
                        best = v;
                    }
                }
                out[slot * c + ch] = best;
            }
            slot += 1;
        }
    }
}

impl FastCnn {
    /// Builds a fast-tier engine from a model's parameters (converted once
    /// here; the model itself is unchanged — `&mut` only because the pinned
    /// parameter order is exposed through `params_mut`). Int8 requires the
    /// model's persisted calibration scales.
    pub fn from_cnn(
        model: &mut SevulDetCnn,
        precision: Precision,
        calibration: Option<&[f64]>,
    ) -> Result<FastCnn, EngineError> {
        if precision == Precision::F64 {
            return Err(EngineError::NotAFastTier);
        }
        let act_scales = if precision == Precision::Int8 {
            let c = calibration.ok_or(EngineError::MissingCalibration)?;
            if c.len() != QUANT_SITES {
                return Err(EngineError::BadCalibration { got: c.len() });
            }
            let mut s = [0.0f32; QUANT_SITES];
            for (dst, &v) in s.iter_mut().zip(c) {
                *dst = v as f32;
            }
            Some(s)
        } else {
            None
        };
        let cfg = model.config().clone();
        let params = model.params_mut();
        let mut it = params.into_iter();
        let mut next = move |what: &str| -> &mut Param {
            it.next().unwrap_or_else(|| {
                // The order and count are pinned by the persistence tests;
                // running out here means the architecture changed without
                // updating the engine.
                panic!("params_mut exhausted before {what}")
            })
        };
        let emb_p = next("embedding table");
        let (vocab, d) = (emb_p.w.rows(), emb_p.w.cols());
        let emb = to_f32(&emb_p.w);
        let tok = if cfg.token_attention {
            let w = next("token-attention w");
            let a_dim = w.w.rows();
            let wt = transposed_f32(w, a_dim, w.w.cols());
            let b = to_f32(&next("token-attention b").w);
            let u_w = to_f32(&next("token-attention u_w").w);
            Some(TokAttF32 { wt, b, u_w, a_dim })
        } else {
            None
        };
        let quant = precision == Precision::Int8;
        let conv = |w: &Param, bias: &Param, c_in: usize| -> ConvF32 {
            let c_out = w.w.rows();
            let kc = w.w.cols();
            let wt = {
                let src = to_f32(&w.w);
                let mut t = vec![0.0f32; kc * c_out];
                kf::transpose_f32(&mut t, &src, c_out, kc);
                t
            };
            let q = quant.then(|| quantize_weights(&wt));
            ConvF32 {
                wt,
                bias: to_f32(&bias.w),
                c_in,
                c_out,
                kw: kc / c_in,
                q,
            }
        };
        let c1w = next("conv1 w");
        let c = c1w.w.rows();
        let conv1 = {
            let w = &*c1w;
            let bias = next("conv1 b");
            conv(w, bias, d)
        };
        let cbam = if cfg.cbam {
            let w0 = next("cbam w0");
            let h = w0.w.rows();
            let w0 = to_f32(&w0.w);
            let b0 = to_f32(&next("cbam b0").w);
            let w1 = to_f32(&next("cbam w1").w);
            let b1 = to_f32(&next("cbam b1").w);
            let wc_p = next("cbam wc");
            let k = wc_p.w.rows();
            let wc = to_f32(&wc_p.w);
            let bc = next("cbam bc").w.data()[0] as f32;
            Some(CbamF32 {
                order: cfg.cbam_order,
                w0,
                b0,
                w1,
                b1,
                wc,
                bc,
                h,
                c,
                k,
            })
        } else {
            None
        };
        let conv2 = {
            let w = next("conv2 w");
            let w = &*w;
            let bias = next("conv2 b");
            conv(w, bias, c)
        };
        let dense = |w: &Param, b: &Param| -> DenseF32 {
            let (rows, cols) = (w.w.rows(), w.w.cols());
            let w = to_f32(&w.w);
            let q = quant.then(|| quantize_weights(&w));
            DenseF32 {
                w,
                b: to_f32(&b.w),
                rows,
                cols,
                q,
            }
        };
        let fc1 = {
            let w = next("fc1 w");
            let w = &*w;
            let b = next("fc1 b");
            dense(w, b)
        };
        let fc2 = {
            let w = next("fc2 w");
            let w = &*w;
            let b = next("fc2 b");
            dense(w, b)
        };
        let fc3 = {
            let w = next("fc3 w");
            let w = &*w;
            let b = next("fc3 b");
            dense(w, b)
        };
        Ok(FastCnn {
            precision,
            fixed_len: cfg.fixed_len,
            spp_bins: cfg.spp_bins.clone(),
            emb,
            vocab,
            d,
            tok,
            conv1,
            cbam,
            conv2,
            fc1,
            fc2,
            fc3,
            act_scales,
            recording: false,
            maxabs: [0.0; QUANT_SITES],
            padded: Vec::new(),
            x: Vec::new(),
            y: Vec::new(),
            cols: Vec::new(),
            qa: Vec::new(),
            qacc: Vec::new(),
            va: Vec::new(),
            vb: Vec::new(),
            scores: Vec::new(),
            alpha: Vec::new(),
        })
    }

    /// The tier this engine runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Inference forward pass: token ids to the raw (pre-sigmoid) logit,
    /// widened back to f64 for downstream thresholding.
    pub fn forward_logit(&mut self, ids: &[usize]) -> f64 {
        // Same padding convention as SevulDetCnn::prepare_ids_into.
        self.padded.clear();
        match self.fixed_len {
            Some(l) => {
                self.padded.extend(ids.iter().copied().take(l));
                self.padded.resize(l.max(1), 0);
            }
            None => {
                if ids.is_empty() {
                    self.padded.push(0);
                } else {
                    self.padded.extend_from_slice(ids);
                }
            }
        }
        let l = self.padded.len();
        let d = self.d;
        self.x.clear();
        self.x.resize(l * d, 0.0);
        for (t, &id) in self.padded.iter().enumerate() {
            let row = if id < self.vocab { id } else { 0 };
            self.x[t * d..(t + 1) * d].copy_from_slice(&self.emb[row * d..(row + 1) * d]);
        }
        if let Some(tok) = &self.tok {
            let a_dim = tok.a_dim;
            self.y.clear();
            self.y.resize(l * a_dim, 0.0);
            kf::gemm_f32(&mut self.y, &self.x, &tok.wt, l, d, a_dim);
            self.scores.clear();
            self.scores.resize(l, 0.0);
            for t in 0..l {
                let urow = &mut self.y[t * a_dim..(t + 1) * a_dim];
                for (u, &b) in urow.iter_mut().zip(&tok.b) {
                    *u = (*u + b).tanh();
                }
                self.scores[t] = urow.iter().zip(&tok.u_w).map(|(a, b)| a * b).sum();
            }
            softmax_f32(&self.scores, &mut self.alpha);
            for t in 0..l {
                let a = self.alpha[t];
                for v in &mut self.x[t * d..(t + 1) * d] {
                    *v *= a;
                }
            }
        }
        let c = self.conv1.c_out;
        conv_forward(
            &self.conv1,
            self.act_scales.map(|s| s[0]),
            &self.x[..l * d],
            l,
            &mut self.cols,
            &mut self.qa,
            &mut self.qacc,
            &mut self.y,
        );
        if self.recording {
            self.maxabs[0] = self.maxabs[0].max(kf::max_abs_f32(&self.cols));
        }
        std::mem::swap(&mut self.x, &mut self.y);
        relu_f32(&mut self.x[..l * c]);
        if let Some(cb) = &self.cbam {
            cbam_forward(cb, &self.x[..l * c], &mut self.y, l);
            std::mem::swap(&mut self.x, &mut self.y);
        }
        conv_forward(
            &self.conv2,
            self.act_scales.map(|s| s[1]),
            &self.x[..l * c],
            l,
            &mut self.cols,
            &mut self.qa,
            &mut self.qacc,
            &mut self.y,
        );
        if self.recording {
            self.maxabs[1] = self.maxabs[1].max(kf::max_abs_f32(&self.cols));
        }
        std::mem::swap(&mut self.x, &mut self.y);
        relu_f32(&mut self.x[..l * c]);
        spp_forward(&self.spp_bins, &self.x[..l * c], l, c, &mut self.va);
        if self.recording {
            self.maxabs[2] = self.maxabs[2].max(kf::max_abs_f32(&self.va));
        }
        dense_forward(
            &self.fc1,
            self.act_scales.map(|s| s[2]),
            &self.va,
            &mut self.qa,
            &mut self.qacc,
            &mut self.vb,
        );
        relu_f32(&mut self.vb);
        if self.recording {
            self.maxabs[3] = self.maxabs[3].max(kf::max_abs_f32(&self.vb));
        }
        dense_forward(
            &self.fc2,
            self.act_scales.map(|s| s[3]),
            &self.vb,
            &mut self.qa,
            &mut self.qacc,
            &mut self.va,
        );
        relu_f32(&mut self.va);
        if self.recording {
            self.maxabs[4] = self.maxabs[4].max(kf::max_abs_f32(&self.va));
        }
        dense_forward(
            &self.fc3,
            self.act_scales.map(|s| s[4]),
            &self.va,
            &mut self.qa,
            &mut self.qacc,
            &mut self.vb,
        );
        self.vb[0] as f64
    }
}

/// Runs a calibration batch through a temporary f32 engine and returns the
/// [`QUANT_SITES`] symmetric activation scales (`max|v| / 127` per site; an
/// all-zero site falls back to scale 1.0). Called at export time; the
/// scales ride the sealed v3 model format.
pub fn calibrate(model: &mut SevulDetCnn, probes: &[Vec<usize>]) -> Result<Vec<f64>, EngineError> {
    let mut eng = FastCnn::from_cnn(model, Precision::F32, None)?;
    eng.recording = true;
    eng.maxabs = [0.0; QUANT_SITES];
    for p in probes {
        eng.forward_logit(p);
    }
    Ok(eng
        .maxabs
        .iter()
        .map(|&m| if m > 0.0 { (m / 127.0) as f64 } else { 1.0 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CnnConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sigmoid(x: f64) -> f64 {
        if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        }
    }

    fn tiny_model() -> SevulDetCnn {
        let mut rng = StdRng::seed_from_u64(7);
        let (v, d) = (12, 8);
        let data: Vec<f64> = (0..v * d).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let table = Tensor::from_vec(&[v, d], data);
        let cfg = CnnConfig {
            channels: 8,
            cbam_reduction: 2,
            cbam_kernel: 3,
            spp_bins: vec![2, 1],
            ..CnnConfig::default()
        };
        SevulDetCnn::new(table, cfg, &mut rng)
    }

    fn sequences() -> Vec<Vec<usize>> {
        vec![
            vec![1, 2, 3, 4, 5],
            vec![0, 0, 0],
            vec![7, 7, 2, 9, 1, 4, 3, 8, 11, 6],
            vec![],
            vec![99, 3], // out-of-range id falls back to row 0
        ]
    }

    #[test]
    fn f32_engine_tracks_f64_scores() {
        let mut model = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let want: Vec<f64> = sequences()
            .iter()
            .map(|s| model.forward_logit(s, false, &mut rng))
            .collect();
        let mut eng = FastCnn::from_cnn(&mut model, Precision::F32, None).unwrap();
        for (s, w) in sequences().iter().zip(&want) {
            let got = eng.forward_logit(s);
            assert!(
                (sigmoid(got) - sigmoid(*w)).abs() < 1e-3,
                "f32 score drifted: got logit {got}, want {w}"
            );
        }
    }

    #[test]
    fn int8_engine_tracks_f64_scores_after_calibration() {
        let mut model = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let want: Vec<f64> = sequences()
            .iter()
            .map(|s| model.forward_logit(s, false, &mut rng))
            .collect();
        let cal = calibrate(&mut model, &sequences()).unwrap();
        assert_eq!(cal.len(), QUANT_SITES);
        let mut eng = FastCnn::from_cnn(&mut model, Precision::Int8, Some(&cal)).unwrap();
        for (s, w) in sequences().iter().zip(&want) {
            let got = eng.forward_logit(s);
            assert!(
                (sigmoid(got) - sigmoid(*w)).abs() < 5e-2,
                "int8 score drifted: got logit {got}, want {w}"
            );
        }
    }

    #[test]
    fn int8_without_calibration_is_an_error() {
        let mut model = tiny_model();
        let err = FastCnn::from_cnn(&mut model, Precision::Int8, None).unwrap_err();
        assert_eq!(err, EngineError::MissingCalibration);
        let err = FastCnn::from_cnn(&mut model, Precision::Int8, Some(&[1.0; 3])).unwrap_err();
        assert_eq!(err, EngineError::BadCalibration { got: 3 });
    }

    #[test]
    fn precision_parses_and_prints() {
        assert_eq!("f64".parse::<Precision>().unwrap(), Precision::F64);
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("int8".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("fp16".parse::<Precision>().is_err());
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}
