//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is keyed by position in the parameter list, so callers
//! must pass parameters in a stable order (every model's `params_mut` does).

use crate::param::Param;
use crate::serialize::LoadError;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                for i in 0..v.len() {
                    let g = p.g.data()[i];
                    v.data_mut()[i] = self.momentum * v.data()[i] + g;
                    p.w.data_mut()[i] -= self.lr * v.data()[i];
                }
            } else {
                let lr = self.lr;
                let g = p.g.clone();
                p.w.axpy(-lr, &g);
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.w.len() {
                let g = p.g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                p.w.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    /// Serializes the optimizer state (step count and both moment vectors)
    /// in the same `{v:e}` full-precision text format as
    /// [`crate::save_params`], so a checkpointed training run resumes with
    /// bit-identical Adam updates.
    pub fn export_state(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("adam {} {}\n", self.t, self.m.len()));
        for (m, v) in self.m.iter().zip(&self.v) {
            let shape = m.shape();
            out.push_str(&format!("moment {}", shape.len()));
            for d in shape {
                out.push_str(&format!(" {d}"));
            }
            out.push('\n');
            for t in [m, v] {
                let values: Vec<String> = t.data().iter().map(|x| format!("{x:e}")).collect();
                out.push_str(&values.join(" "));
                out.push('\n');
            }
        }
        out
    }

    /// Restores state written by [`Adam::export_state`]. Hyper-parameters
    /// (`lr`, betas, eps) are not part of the state — the caller configures
    /// those — only `t` and the moment estimates are.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on any structural or numeric mismatch.
    pub fn import_state(&mut self, text: &str) -> Result<(), LoadError> {
        let mut lines = text.lines();
        let head = lines
            .next()
            .ok_or_else(|| LoadError("empty adam state".into()))?;
        let mut parts = head.split_whitespace();
        if parts.next() != Some("adam") {
            return Err(LoadError(format!("bad adam header `{head}`")));
        }
        let t: u64 = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| LoadError(format!("bad step count in `{head}`")))?;
        let count: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| LoadError(format!("bad tensor count in `{head}`")))?;
        let mut m = Vec::with_capacity(count);
        let mut v = Vec::with_capacity(count);
        for i in 0..count {
            let shape_line = lines
                .next()
                .ok_or_else(|| LoadError(format!("missing shape for moment {i}")))?;
            let mut parts = shape_line.split_whitespace();
            if parts.next() != Some("moment") {
                return Err(LoadError(format!("bad moment line `{shape_line}`")));
            }
            let rank: usize = parts
                .next()
                .and_then(|r| r.parse().ok())
                .ok_or_else(|| LoadError(format!("bad rank in `{shape_line}`")))?;
            let shape: Vec<usize> = parts
                .take(rank)
                .map(|d| {
                    d.parse()
                        .map_err(|_| LoadError(format!("bad dim in `{shape_line}`")))
                })
                .collect::<Result<_, _>>()?;
            let len: usize = shape.iter().product();
            for out in [&mut m, &mut v] {
                let line = lines
                    .next()
                    .ok_or_else(|| LoadError(format!("missing values for moment {i}")))?;
                let values: Vec<f64> = line
                    .split_whitespace()
                    .map(|x| x.parse().map_err(|_| LoadError(format!("bad value `{x}`"))))
                    .collect::<Result<_, _>>()?;
                if values.len() != len {
                    return Err(LoadError(format!(
                        "value count mismatch for moment {i}: {} vs {len}",
                        values.len()
                    )));
                }
                out.push(Tensor::from_vec(&shape, values));
            }
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Number of parameter slots the current state covers (0 before the
    /// first step or import).
    pub fn state_len(&self) -> usize {
        self.m.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(w) = (w-3)² with each optimizer.
    fn quadratic_descent(mut update: impl FnMut(&mut Param, usize)) -> f64 {
        let mut p = Param::zeros(&[1]);
        for step in 0..200 {
            let w = p.w.data()[0];
            p.g.data_mut()[0] = 2.0 * (w - 3.0);
            update(&mut p, step);
        }
        p.w.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        // Run A: 20 uninterrupted steps. Run B: 10 steps, export/import
        // through text, 10 more. Weights must match to the bit.
        let descend = |p: &mut Param, opt: &mut Adam| {
            let w = p.w.data()[0];
            p.g.data_mut()[0] = 2.0 * (w - 3.0) + 0.1 * (w * 7.0).sin();
            opt.step(&mut [p]);
        };
        let mut pa = Param::zeros(&[1]);
        let mut oa = Adam::new(0.05);
        for _ in 0..20 {
            descend(&mut pa, &mut oa);
        }
        let mut pb = Param::zeros(&[1]);
        let mut ob = Adam::new(0.05);
        for _ in 0..10 {
            descend(&mut pb, &mut ob);
        }
        let state = ob.export_state();
        let mut ob2 = Adam::new(0.05);
        ob2.import_state(&state).unwrap();
        assert_eq!(ob2.state_len(), 1);
        for _ in 0..10 {
            descend(&mut pb, &mut ob2);
        }
        assert_eq!(pa.w.data()[0].to_bits(), pb.w.data()[0].to_bits());
    }

    #[test]
    fn adam_state_rejects_garbage() {
        let mut o = Adam::new(0.1);
        assert!(o.import_state("").is_err());
        assert!(o.import_state("adam x y").is_err());
        assert!(o.import_state("adam 3 1\nmoment 1 2\n1 2\n").is_err());
        assert!(o
            .import_state("adam 3 1\nmoment 1 2\n1 2\n1 2 3\n")
            .is_err());
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::zeros(&[2]);
        p.g.data_mut()[0] = 1.0;
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert_eq!(p.g.data(), &[0.0, 0.0]);
    }
}
