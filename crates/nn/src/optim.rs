//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is keyed by position in the parameter list, so callers
//! must pass parameters in a stable order (every model's `params_mut` does).

use crate::param::Param;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                for i in 0..v.len() {
                    let g = p.g.data()[i];
                    v.data_mut()[i] = self.momentum * v.data()[i] + g;
                    p.w.data_mut()[i] -= self.lr * v.data()[i];
                }
            } else {
                let lr = self.lr;
                let g = p.g.clone();
                p.w.axpy(-lr, &g);
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step and clears gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.w.shape())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.w.len() {
                let g = p.g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                p.w.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(w) = (w-3)² with each optimizer.
    fn quadratic_descent(mut update: impl FnMut(&mut Param, usize)) -> f64 {
        let mut p = Param::zeros(&[1]);
        for step in 0..200 {
            let w = p.w.data()[0];
            p.g.data_mut()[0] = 2.0 * (w - 3.0);
            update(&mut p, step);
        }
        p.w.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = quadratic_descent(|p, _| opt.step(&mut [p]));
        assert!((w - 3.0).abs() < 0.05, "w={w}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::zeros(&[2]);
        p.g.data_mut()[0] = 1.0;
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert_eq!(p.g.data(), &[0.0, 0.0]);
    }
}
