//! Recurrent baselines: LSTM and GRU cells with BPTT, plus a bidirectional
//! sequence encoder. These power the BLSTM/BGRU comparison networks of
//! Tables II and V (VulDeePecker uses a BLSTM; SySeVR's best model is a
//! BGRU). Both consume *fixed-length* token windows — the very limitation
//! SPP removes.

use crate::param::Param;
use crate::tensor::{sigmoid, Tensor};
use rand::rngs::StdRng;

/// Which recurrent cell a sequence encoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Long short-term memory.
    Lstm,
    /// Gated recurrent unit.
    Gru,
}

/// One directional recurrent encoder (LSTM or GRU).
#[derive(Debug, Clone)]
pub struct Rnn {
    kind: CellKind,
    /// Input-to-gates weights `(G·H × D)` (G = 4 for LSTM, 3 for GRU).
    pub wx: Param,
    /// Hidden-to-gates weights `(G·H × H)`.
    pub wh: Param,
    /// Gate biases `(G·H)`.
    pub b: Param,
    h: usize,
    d: usize,
    cache: Vec<StepCache>,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>, // LSTM only
    gates: Vec<f64>,  // post-activation gates, layout by kind
    c: Vec<f64>,      // LSTM cell state
}

impl Rnn {
    /// Creates a recurrent encoder with input dim `d` and hidden dim `h`.
    pub fn new(kind: CellKind, d: usize, h: usize, rng: &mut StdRng) -> Rnn {
        let g = match kind {
            CellKind::Lstm => 4,
            CellKind::Gru => 3,
        };
        let mut b = Param::zeros(&[g * h]);
        if kind == CellKind::Lstm {
            // Forget-gate bias init to 1 (standard trick for gradient flow).
            for i in h..2 * h {
                b.w.data_mut()[i] = 1.0;
            }
        }
        Rnn {
            kind,
            wx: Param::xavier(&[g * h, d], d, h, rng),
            wh: Param::xavier(&[g * h, h], h, h, rng),
            b,
            h,
            d,
            cache: Vec::new(),
        }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.h
    }

    /// Runs the sequence, returning the final hidden state.
    pub fn forward(&mut self, xs: &Tensor) -> Vec<f64> {
        assert_eq!(xs.cols(), self.d);
        self.cache.clear();
        let mut h_prev = vec![0.0; self.h];
        let mut c_prev = vec![0.0; self.h];
        for t in 0..xs.rows() {
            let x = xs.row(t).to_vec();
            let (h_new, c_new, gates) = self.step(&x, &h_prev, &c_prev);
            self.cache.push(StepCache {
                x,
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                gates,
                c: c_new.clone(),
            });
            h_prev = h_new;
            c_prev = c_new;
        }
        h_prev
    }

    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.h;
        match self.kind {
            CellKind::Lstm => {
                // pre = Wx·x + Wh·h_prev + b, gate order [i, f, g, o].
                let mut pre = self.wx.w.matvec(x);
                let hp = self.wh.w.matvec(h_prev);
                for i in 0..4 * h {
                    pre[i] += hp[i] + self.b.w.data()[i];
                }
                let mut gates = vec![0.0; 4 * h];
                for i in 0..h {
                    gates[i] = sigmoid(pre[i]); // i
                    gates[h + i] = sigmoid(pre[h + i]); // f
                    gates[2 * h + i] = pre[2 * h + i].tanh(); // g
                    gates[3 * h + i] = sigmoid(pre[3 * h + i]); // o
                }
                let mut c = vec![0.0; h];
                let mut hn = vec![0.0; h];
                for i in 0..h {
                    c[i] = gates[h + i] * c_prev[i] + gates[i] * gates[2 * h + i];
                    hn[i] = gates[3 * h + i] * c[i].tanh();
                }
                (hn, c, gates)
            }
            CellKind::Gru => {
                // Gate order [z, r, n]; n uses r∘h_prev.
                let px = self.wx.w.matvec(x);
                let ph = self.wh.w.matvec(h_prev);
                let mut gates = vec![0.0; 3 * h];
                for i in 0..h {
                    gates[i] = sigmoid(px[i] + ph[i] + self.b.w.data()[i]); // z
                    gates[h + i] = sigmoid(px[h + i] + ph[h + i] + self.b.w.data()[h + i]);
                    // r
                }
                let mut hn = vec![0.0; h];
                for i in 0..h {
                    let n_pre =
                        px[2 * h + i] + gates[h + i] * ph[2 * h + i] + self.b.w.data()[2 * h + i];
                    let n = n_pre.tanh();
                    gates[2 * h + i] = n;
                    hn[i] = (1.0 - gates[i]) * n + gates[i] * h_prev[i];
                }
                (hn, vec![0.0; h], gates)
            }
        }
    }

    /// BPTT from a gradient on the *final* hidden state. Accumulates
    /// parameter gradients; returns per-step input gradients `(L × D)`.
    pub fn backward(&mut self, dh_last: &[f64]) -> Tensor {
        let steps = self.cache.len();
        let h = self.h;
        let d = self.d;
        let mut dxs = Tensor::zeros(&[steps, d]);
        let mut dh = dh_last.to_vec();
        let mut dc = vec![0.0; h];
        for t in (0..steps).rev() {
            let sc = self.cache[t].clone();
            let mut dx = vec![0.0; d];
            let mut dh_prev = vec![0.0; h];
            match self.kind {
                CellKind::Lstm => {
                    let mut dpre = vec![0.0; 4 * h];
                    for i in 0..h {
                        let o = sc.gates[3 * h + i];
                        let tc = sc.c[i].tanh();
                        let dci = dc[i] + dh[i] * o * (1.0 - tc * tc);
                        let di = dci * sc.gates[2 * h + i];
                        let df = dci * sc.c_prev[i];
                        let dg = dci * sc.gates[i];
                        let do_ = dh[i] * tc;
                        dpre[i] = di * sc.gates[i] * (1.0 - sc.gates[i]);
                        dpre[h + i] = df * sc.gates[h + i] * (1.0 - sc.gates[h + i]);
                        dpre[2 * h + i] = dg * (1.0 - sc.gates[2 * h + i] * sc.gates[2 * h + i]);
                        dpre[3 * h + i] = do_ * o * (1.0 - o);
                        dc[i] = dci * sc.gates[h + i];
                    }
                    self.accumulate(&dpre, &sc, &mut dx, &mut dh_prev);
                }
                CellKind::Gru => {
                    // Forward convention (PyTorch-style, r gates per output
                    // unit): n_pre_i = px_i + r_i·ph_i + b_i.
                    let ph = self.wh.w.matvec(&sc.h_prev);
                    let mut dpre = vec![0.0; 3 * h]; // z_pre, r_pre, n_pre
                    let mut dpre_n_h = vec![0.0; h]; // n_pre scaled by r (Wh path)
                    for i in 0..h {
                        let z = sc.gates[i];
                        let r = sc.gates[h + i];
                        let n = sc.gates[2 * h + i];
                        let dz = dh[i] * (sc.h_prev[i] - n);
                        let dn = dh[i] * (1.0 - z);
                        dh_prev[i] += dh[i] * z;
                        let dn_pre = dn * (1.0 - n * n);
                        let dr = dn_pre * ph[2 * h + i];
                        dpre[i] = dz * z * (1.0 - z);
                        dpre[h + i] = dr * r * (1.0 - r);
                        dpre[2 * h + i] = dn_pre;
                        dpre_n_h[i] = dn_pre * r;
                    }
                    for gi in 0..3 * h {
                        let g = dpre[gi];
                        if g == 0.0 {
                            continue;
                        }
                        self.b.g.data_mut()[gi] += g;
                        for j in 0..d {
                            self.wx.g.data_mut()[gi * d + j] += g * sc.x[j];
                            dx[j] += g * self.wx.w.data()[gi * d + j];
                        }
                        // Wh path: n-rows use the r-scaled gradient.
                        let gh = if gi >= 2 * h { dpre_n_h[gi - 2 * h] } else { g };
                        for j in 0..h {
                            self.wh.g.data_mut()[gi * h + j] += gh * sc.h_prev[j];
                            dh_prev[j] += gh * self.wh.w.data()[gi * h + j];
                        }
                    }
                }
            }
            dxs.row_mut(t).copy_from_slice(&dx);
            dh = dh_prev;
            if self.kind == CellKind::Gru {
                dc = vec![0.0; h];
            }
        }
        dxs
    }

    /// Shared accumulation for LSTM (linear pre-activations).
    fn accumulate(&mut self, dpre: &[f64], sc: &StepCache, dx: &mut [f64], dh_prev: &mut [f64]) {
        let d = self.d;
        let h = self.h;
        for gi in 0..dpre.len() {
            let g = dpre[gi];
            if g == 0.0 {
                continue;
            }
            self.b.g.data_mut()[gi] += g;
            for j in 0..d {
                self.wx.g.data_mut()[gi * d + j] += g * sc.x[j];
                dx[j] += g * self.wx.w.data()[gi * d + j];
            }
            for j in 0..h {
                self.wh.g.data_mut()[gi * h + j] += g * sc.h_prev[j];
                dh_prev[j] += g * self.wh.w.data()[gi * h + j];
            }
        }
    }

    /// The encoder's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

/// A bidirectional encoder: one forward and one backward [`Rnn`]; output is
/// the concatenation of both final hidden states (`2H`).
#[derive(Debug, Clone)]
pub struct BiRnn {
    /// Forward-direction cell.
    pub fwd: Rnn,
    /// Backward-direction cell.
    pub bwd: Rnn,
}

impl BiRnn {
    /// Creates a bidirectional encoder.
    pub fn new(kind: CellKind, d: usize, h: usize, rng: &mut StdRng) -> BiRnn {
        BiRnn {
            fwd: Rnn::new(kind, d, h, rng),
            bwd: Rnn::new(kind, d, h, rng),
        }
    }

    /// Output dimension (`2H`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Encodes a `(L × D)` sequence into a `2H` vector.
    pub fn forward(&mut self, xs: &Tensor) -> Vec<f64> {
        let mut out = self.fwd.forward(xs);
        let rev = reverse_rows(xs);
        out.extend(self.bwd.forward(&rev));
        out
    }

    /// BPTT; returns the input gradient `(L × D)`.
    pub fn backward(&mut self, dout: &[f64]) -> Tensor {
        let h = self.fwd.hidden();
        let dxf = self.fwd.backward(&dout[..h]);
        let dxb = self.bwd.backward(&dout[h..]);
        let dxb = reverse_rows(&dxb);
        dxf.add(&dxb)
    }

    /// The encoder's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.fwd.params_mut();
        v.extend(self.bwd.params_mut());
        v
    }
}

fn reverse_rows(x: &Tensor) -> Tensor {
    let (l, d) = (x.rows(), x.cols());
    let mut out = Tensor::zeros(&[l, d]);
    for t in 0..l {
        out.row_mut(t).copy_from_slice(x.row(l - 1 - t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;
    use rand::{Rng, SeedableRng};

    fn sample(l: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[l, d],
            (0..l * d).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn lstm_final_state_changes_with_input() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut r = Rnn::new(CellKind::Lstm, 3, 4, &mut rng);
        let a = r.forward(&sample(5, 3, 1));
        let b = r.forward(&sample(5, 3, 2));
        assert_ne!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn lstm_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut r = Rnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(4, 2, 33);
        check_param_grads(
            &mut r,
            |l| l.params_mut(),
            |l| l.forward(&xs).iter().sum(),
            |l| {
                let h = l.forward(&xs);
                l.backward(&vec![1.0; h.len()]);
            },
        );
    }

    #[test]
    fn lstm_input_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(34);
        let r = Rnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(4, 2, 35);
        let mut rr = r.clone();
        let h = rr.forward(&xs);
        let dx = rr.backward(&vec![1.0; h.len()]);
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = r.clone().forward(&xp).iter().sum();
            let fm: f64 = r.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gru_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(36);
        let mut r = Rnn::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = sample(4, 2, 37);
        check_param_grads(
            &mut r,
            |l| l.params_mut(),
            |l| l.forward(&xs).iter().sum(),
            |l| {
                let h = l.forward(&xs);
                l.backward(&vec![1.0; h.len()]);
            },
        );
    }

    #[test]
    fn gru_input_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(38);
        let r = Rnn::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = sample(4, 2, 39);
        let mut rr = r.clone();
        let h = rr.forward(&xs);
        let dx = rr.backward(&vec![1.0; h.len()]);
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = r.clone().forward(&xp).iter().sum();
            let fm: f64 = r.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn birnn_concats_directions_and_backprops() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut b = BiRnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(5, 2, 41);
        let out = b.forward(&xs);
        assert_eq!(out.len(), 6);
        let dx = b.backward(&[1.0; 6]);
        assert_eq!(dx.shape(), &[5, 2]);
        // Input gradient check.
        let fresh = b.clone();
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = fresh.clone().forward(&xp).iter().sum();
            let fm: f64 = fresh.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!((num - dx.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn reverse_rows_flips() {
        let x = Tensor::from_vec(&[3, 1], vec![1., 2., 3.]);
        assert_eq!(reverse_rows(&x).data(), &[3., 2., 1.]);
    }
}
