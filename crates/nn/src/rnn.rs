//! Recurrent baselines: LSTM and GRU cells with BPTT, plus a bidirectional
//! sequence encoder. These power the BLSTM/BGRU comparison networks of
//! Tables II and V (VulDeePecker uses a BLSTM; SySeVR's best model is a
//! BGRU). Both consume *fixed-length* token windows — the very limitation
//! SPP removes.
//!
//! The input projection `Wx·x_t` for the whole sequence is one GEMM on the
//! kernel layer, and all per-step state lives in structure-of-arrays caches
//! that are reused across calls, so a warmed-up forward/backward pass
//! allocates nothing.

use crate::kernels::{self, Workspace};
use crate::param::Param;
use crate::tensor::{sigmoid, Tensor};
use rand::rngs::StdRng;

/// Which recurrent cell a sequence encoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Long short-term memory.
    Lstm,
    /// Gated recurrent unit.
    Gru,
}

/// One directional recurrent encoder (LSTM or GRU).
#[derive(Debug, Clone)]
pub struct Rnn {
    kind: CellKind,
    /// Input-to-gates weights `(G·H × D)` (G = 4 for LSTM, 3 for GRU).
    pub wx: Param,
    /// Hidden-to-gates weights `(G·H × H)`.
    pub wh: Param,
    /// Gate biases `(G·H)`.
    pub b: Param,
    h: usize,
    d: usize,
    // Structure-of-arrays step caches, reused across calls. `cache_h` and
    // `cache_c` carry L+1 rows with row 0 the (zero) initial state, so step
    // t reads row t and writes row t+1.
    steps: usize,
    cache_x: Tensor,     // (L × D)
    cache_h: Tensor,     // (L+1 × H)
    cache_c: Tensor,     // (L+1 × H), LSTM only
    cache_gates: Tensor, // (L × G·H) post-activation
    cache_px: Tensor,    // (L × G·H) batched Wx·x_t
    cache_ph: Tensor,    // (L × G·H) Wh·h_{t-1} (GRU backward reads it)
    scratch_pre: Vec<f64>,
    scratch_dpre: Vec<f64>,
    scratch_dpre_n_h: Vec<f64>,
    scratch_dh: Vec<f64>,
    scratch_dh_prev: Vec<f64>,
    scratch_dc: Vec<f64>,
    ws: Workspace,
}

impl Rnn {
    /// Creates a recurrent encoder with input dim `d` and hidden dim `h`.
    pub fn new(kind: CellKind, d: usize, h: usize, rng: &mut StdRng) -> Rnn {
        let g = match kind {
            CellKind::Lstm => 4,
            CellKind::Gru => 3,
        };
        let mut b = Param::zeros(&[g * h]);
        if kind == CellKind::Lstm {
            // Forget-gate bias init to 1 (standard trick for gradient flow).
            for i in h..2 * h {
                b.w.data_mut()[i] = 1.0;
            }
        }
        Rnn {
            kind,
            wx: Param::xavier(&[g * h, d], d, h, rng),
            wh: Param::xavier(&[g * h, h], h, h, rng),
            b,
            h,
            d,
            steps: 0,
            cache_x: Tensor::zeros(&[0, 0]),
            cache_h: Tensor::zeros(&[0, 0]),
            cache_c: Tensor::zeros(&[0, 0]),
            cache_gates: Tensor::zeros(&[0, 0]),
            cache_px: Tensor::zeros(&[0, 0]),
            cache_ph: Tensor::zeros(&[0, 0]),
            scratch_pre: Vec::new(),
            scratch_dpre: Vec::new(),
            scratch_dpre_n_h: Vec::new(),
            scratch_dh: Vec::new(),
            scratch_dh_prev: Vec::new(),
            scratch_dc: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.h
    }

    /// How many timesteps the last `forward_into` processed (0 before any
    /// forward pass).
    pub fn last_steps(&self) -> usize {
        self.steps
    }

    /// The cached hidden state after timestep `t` of the last forward pass
    /// (`t` in `0..last_steps()`); `t = 0` is the state after the first input.
    pub fn step_state(&self, t: usize) -> &[f64] {
        assert!(t < self.steps);
        self.cache_h.row(t + 1)
    }

    fn gate_count(&self) -> usize {
        match self.kind {
            CellKind::Lstm => 4,
            CellKind::Gru => 3,
        }
    }

    /// Runs the sequence, writing the final hidden state into `h_out`.
    pub fn forward_into(&mut self, xs: &Tensor, h_out: &mut Vec<f64>) {
        assert_eq!(xs.cols(), self.d);
        let l = xs.rows();
        let h = self.h;
        let gh = self.gate_count() * h;
        self.steps = l;
        self.cache_x.copy_from(xs);
        // Batched input projection: px = X·Wxᵀ as one GEMM over the whole
        // sequence (dense — the per-step matvec it replaces never skipped).
        let mut wxt = self.ws.acquire(self.d * gh);
        kernels::transpose_into(&mut wxt, self.wx.w.data(), gh, self.d);
        self.cache_px.resize(&[l, gh]);
        self.cache_px.fill_zero();
        kernels::gemm_acc_dense(self.cache_px.data_mut(), xs.data(), &wxt, l, self.d, gh);
        self.ws.release(wxt);
        self.cache_h.resize(&[l + 1, h]);
        self.cache_h.fill_zero();
        self.cache_c.resize(&[l + 1, h]);
        self.cache_c.fill_zero();
        self.cache_gates.resize(&[l, gh]);
        self.cache_ph.resize(&[l, gh]);
        for t in 0..l {
            // ph_t = Wh·h_{t-1}.
            kernels::matvec_into(
                self.cache_ph.row_mut(t),
                self.wh.w.data(),
                self.cache_h.row(t),
                gh,
                h,
            );
            match self.kind {
                CellKind::Lstm => {
                    // pre = px + ph + b, gate order [i, f, g, o].
                    self.scratch_pre.clear();
                    self.scratch_pre.extend_from_slice(self.cache_px.row(t));
                    {
                        let ph = self.cache_ph.row(t);
                        let b = self.b.w.data();
                        for i in 0..gh {
                            self.scratch_pre[i] += ph[i] + b[i];
                        }
                    }
                    let pre = &self.scratch_pre;
                    let gates = self.cache_gates.row_mut(t);
                    for i in 0..h {
                        gates[i] = sigmoid(pre[i]); // i
                        gates[h + i] = sigmoid(pre[h + i]); // f
                        gates[2 * h + i] = pre[2 * h + i].tanh(); // g
                        gates[3 * h + i] = sigmoid(pre[3 * h + i]); // o
                    }
                    let (c_lo, c_hi) = self.cache_c.data_mut().split_at_mut((t + 1) * h);
                    let c_prev = &c_lo[t * h..];
                    let c = &mut c_hi[..h];
                    let (_, h_hi) = self.cache_h.data_mut().split_at_mut((t + 1) * h);
                    let hn = &mut h_hi[..h];
                    for i in 0..h {
                        c[i] = gates[h + i] * c_prev[i] + gates[i] * gates[2 * h + i];
                        hn[i] = gates[3 * h + i] * c[i].tanh();
                    }
                }
                CellKind::Gru => {
                    // Gate order [z, r, n]; n uses r∘(Wh·h_prev).
                    let px = self.cache_px.row(t);
                    let ph = self.cache_ph.row(t);
                    let b = self.b.w.data();
                    let gates = self.cache_gates.row_mut(t);
                    let (h_lo, h_hi) = self.cache_h.data_mut().split_at_mut((t + 1) * h);
                    let h_prev = &h_lo[t * h..];
                    let hn = &mut h_hi[..h];
                    for i in 0..h {
                        gates[i] = sigmoid(px[i] + ph[i] + b[i]); // z
                        gates[h + i] = sigmoid(px[h + i] + ph[h + i] + b[h + i]);
                        // r
                    }
                    for i in 0..h {
                        let n_pre = px[2 * h + i] + gates[h + i] * ph[2 * h + i] + b[2 * h + i];
                        let n = n_pre.tanh();
                        gates[2 * h + i] = n;
                        hn[i] = (1.0 - gates[i]) * n + gates[i] * h_prev[i];
                    }
                }
            }
        }
        h_out.clear();
        h_out.extend_from_slice(self.cache_h.row(l));
    }

    /// Runs the sequence, returning the final hidden state.
    pub fn forward(&mut self, xs: &Tensor) -> Vec<f64> {
        let mut h_out = Vec::new();
        self.forward_into(xs, &mut h_out);
        h_out
    }

    /// BPTT from a gradient on the *final* hidden state. Accumulates
    /// parameter gradients; writes per-step input gradients `(L × D)` into
    /// `dxs`.
    pub fn backward_into(&mut self, dh_last: &[f64], dxs: &mut Tensor) {
        let steps = self.steps;
        let h = self.h;
        let d = self.d;
        let gh = self.gate_count() * h;
        dxs.resize(&[steps, d]);
        dxs.fill_zero();
        self.scratch_dh.clear();
        self.scratch_dh.extend_from_slice(dh_last);
        self.scratch_dc.clear();
        self.scratch_dc.resize(h, 0.0);
        for t in (0..steps).rev() {
            self.scratch_dh_prev.clear();
            self.scratch_dh_prev.resize(h, 0.0);
            self.scratch_dpre.clear();
            self.scratch_dpre.resize(gh, 0.0);
            match self.kind {
                CellKind::Lstm => {
                    let gates = self.cache_gates.row(t);
                    let (c_row, c_prev) = (self.cache_c.row(t + 1), self.cache_c.row(t));
                    let dh = &self.scratch_dh;
                    let dc = &mut self.scratch_dc;
                    let dpre = &mut self.scratch_dpre;
                    for i in 0..h {
                        let o = gates[3 * h + i];
                        let tc = c_row[i].tanh();
                        let dci = dc[i] + dh[i] * o * (1.0 - tc * tc);
                        let di = dci * gates[2 * h + i];
                        let df = dci * c_prev[i];
                        let dg = dci * gates[i];
                        let do_ = dh[i] * tc;
                        dpre[i] = di * gates[i] * (1.0 - gates[i]);
                        dpre[h + i] = df * gates[h + i] * (1.0 - gates[h + i]);
                        dpre[2 * h + i] = dg * (1.0 - gates[2 * h + i] * gates[2 * h + i]);
                        dpre[3 * h + i] = do_ * o * (1.0 - o);
                        dc[i] = dci * gates[h + i];
                    }
                }
                CellKind::Gru => {
                    // Forward convention (PyTorch-style, r gates per output
                    // unit): n_pre_i = px_i + r_i·ph_i + b_i. ph comes from
                    // the forward cache instead of a matvec recompute.
                    self.scratch_dpre_n_h.clear();
                    self.scratch_dpre_n_h.resize(h, 0.0);
                    let gates = self.cache_gates.row(t);
                    let ph = self.cache_ph.row(t);
                    let h_prev = self.cache_h.row(t);
                    let dh = &self.scratch_dh;
                    let dh_prev = &mut self.scratch_dh_prev;
                    let dpre = &mut self.scratch_dpre;
                    let dpre_n_h = &mut self.scratch_dpre_n_h;
                    for i in 0..h {
                        let z = gates[i];
                        let r = gates[h + i];
                        let n = gates[2 * h + i];
                        let dz = dh[i] * (h_prev[i] - n);
                        let dn = dh[i] * (1.0 - z);
                        dh_prev[i] += dh[i] * z;
                        let dn_pre = dn * (1.0 - n * n);
                        let dr = dn_pre * ph[2 * h + i];
                        dpre[i] = dz * z * (1.0 - z);
                        dpre[h + i] = dr * r * (1.0 - r);
                        dpre[2 * h + i] = dn_pre;
                        dpre_n_h[i] = dn_pre * r;
                    }
                }
            }
            // Shared per-step accumulation (zero pre-activation gradients
            // contribute nothing and are skipped, as before).
            let x_row = self.cache_x.row(t);
            let hp_row = self.cache_h.row(t);
            let dx = dxs.row_mut(t);
            for gi in 0..gh {
                let g = self.scratch_dpre[gi];
                if g == 0.0 {
                    continue;
                }
                self.b.g.data_mut()[gi] += g;
                for j in 0..d {
                    self.wx.g.data_mut()[gi * d + j] += g * x_row[j];
                    dx[j] += g * self.wx.w.data()[gi * d + j];
                }
                // Wh path: GRU n-rows use the r-scaled gradient.
                let gw = if self.kind == CellKind::Gru && gi >= 2 * h {
                    self.scratch_dpre_n_h[gi - 2 * h]
                } else {
                    g
                };
                for j in 0..h {
                    self.wh.g.data_mut()[gi * h + j] += gw * hp_row[j];
                    self.scratch_dh_prev[j] += gw * self.wh.w.data()[gi * h + j];
                }
            }
            std::mem::swap(&mut self.scratch_dh, &mut self.scratch_dh_prev);
        }
    }

    /// BPTT from a gradient on the *final* hidden state; returns per-step
    /// input gradients `(L × D)`.
    pub fn backward(&mut self, dh_last: &[f64]) -> Tensor {
        let mut dxs = Tensor::zeros(&[0, 0]);
        self.backward_into(dh_last, &mut dxs);
        dxs
    }

    /// The encoder's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

/// A bidirectional encoder: one forward and one backward [`Rnn`]; output is
/// the concatenation of both final hidden states (`2H`).
#[derive(Debug, Clone)]
pub struct BiRnn {
    /// Forward-direction cell.
    pub fwd: Rnn,
    /// Backward-direction cell.
    pub bwd: Rnn,
    rev: Tensor,
    h_tmp: Vec<f64>,
}

impl BiRnn {
    /// Creates a bidirectional encoder.
    pub fn new(kind: CellKind, d: usize, h: usize, rng: &mut StdRng) -> BiRnn {
        BiRnn {
            fwd: Rnn::new(kind, d, h, rng),
            bwd: Rnn::new(kind, d, h, rng),
            rev: Tensor::zeros(&[0, 0]),
            h_tmp: Vec::new(),
        }
    }

    /// Output dimension (`2H`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Encodes a `(L × D)` sequence into a `2H` vector written to `out`.
    pub fn forward_into(&mut self, xs: &Tensor, out: &mut Vec<f64>) {
        self.fwd.forward_into(xs, out);
        reverse_rows_into(xs, &mut self.rev);
        self.bwd.forward_into(&self.rev, &mut self.h_tmp);
        out.extend_from_slice(&self.h_tmp);
    }

    /// Encodes a `(L × D)` sequence into a `2H` vector.
    pub fn forward(&mut self, xs: &Tensor) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_into(xs, &mut out);
        out
    }

    /// Per-position saliency from the last forward pass: for each timestep
    /// the L2 norm of the hidden-state delta `‖h_t − h_{t−1}‖` summed over
    /// both directions (the backward cell's step for position `t` is its own
    /// step `L−1−t`). Positions where the recurrent state moves a lot are the
    /// ones the encoder is reacting to — a deterministic relevance proxy for
    /// cells that have no attention layer. Empty before any forward pass.
    pub fn token_saliency(&self) -> Vec<f64> {
        let l = self.fwd.last_steps();
        if l == 0 || l != self.bwd.last_steps() {
            return Vec::new();
        }
        let delta = |cell: &Rnn, t: usize| -> f64 {
            let cur = cell.step_state(t);
            let mut acc = 0.0;
            if t == 0 {
                for &v in cur {
                    acc += v * v;
                }
            } else {
                for (&a, &b) in cur.iter().zip(cell.step_state(t - 1)) {
                    let d = a - b;
                    acc += d * d;
                }
            }
            acc.sqrt()
        };
        (0..l)
            .map(|t| delta(&self.fwd, t) + delta(&self.bwd, l - 1 - t))
            .collect()
    }

    /// BPTT; writes the input gradient `(L × D)` into `dx`.
    pub fn backward_into(&mut self, dout: &[f64], dx: &mut Tensor) {
        let h = self.fwd.hidden();
        self.fwd.backward_into(&dout[..h], dx);
        self.bwd.backward_into(&dout[h..], &mut self.rev);
        let l = dx.rows();
        for t in 0..l {
            let src = self.rev.row(l - 1 - t);
            for (a, &b) in dx.row_mut(t).iter_mut().zip(src) {
                *a += b;
            }
        }
    }

    /// BPTT; returns the input gradient `(L × D)`.
    pub fn backward(&mut self, dout: &[f64]) -> Tensor {
        let mut dx = Tensor::zeros(&[0, 0]);
        self.backward_into(dout, &mut dx);
        dx
    }

    /// The encoder's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.fwd.params_mut();
        v.extend(self.bwd.params_mut());
        v
    }
}

fn reverse_rows_into(x: &Tensor, out: &mut Tensor) {
    let (l, d) = (x.rows(), x.cols());
    out.resize(&[l, d]);
    for t in 0..l {
        out.row_mut(t).copy_from_slice(x.row(l - 1 - t));
    }
}

#[cfg(test)]
fn reverse_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[0, 0]);
    reverse_rows_into(x, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;
    use rand::{Rng, SeedableRng};

    fn sample(l: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[l, d],
            (0..l * d).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn lstm_final_state_changes_with_input() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut r = Rnn::new(CellKind::Lstm, 3, 4, &mut rng);
        let a = r.forward(&sample(5, 3, 1));
        let b = r.forward(&sample(5, 3, 2));
        assert_ne!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn lstm_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut r = Rnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(4, 2, 33);
        check_param_grads(
            &mut r,
            |l| l.params_mut(),
            |l| l.forward(&xs).iter().sum(),
            |l| {
                let h = l.forward(&xs);
                l.backward(&vec![1.0; h.len()]);
            },
        );
    }

    #[test]
    fn lstm_input_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(34);
        let r = Rnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(4, 2, 35);
        let mut rr = r.clone();
        let h = rr.forward(&xs);
        let dx = rr.backward(&vec![1.0; h.len()]);
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = r.clone().forward(&xp).iter().sum();
            let fm: f64 = r.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gru_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(36);
        let mut r = Rnn::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = sample(4, 2, 37);
        check_param_grads(
            &mut r,
            |l| l.params_mut(),
            |l| l.forward(&xs).iter().sum(),
            |l| {
                let h = l.forward(&xs);
                l.backward(&vec![1.0; h.len()]);
            },
        );
    }

    #[test]
    fn gru_input_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(38);
        let r = Rnn::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = sample(4, 2, 39);
        let mut rr = r.clone();
        let h = rr.forward(&xs);
        let dx = rr.backward(&vec![1.0; h.len()]);
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = r.clone().forward(&xp).iter().sum();
            let fm: f64 = r.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn birnn_concats_directions_and_backprops() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut b = BiRnn::new(CellKind::Lstm, 2, 3, &mut rng);
        let xs = sample(5, 2, 41);
        let out = b.forward(&xs);
        assert_eq!(out.len(), 6);
        let dx = b.backward(&[1.0; 6]);
        assert_eq!(dx.shape(), &[5, 2]);
        // Input gradient check.
        let fresh = b.clone();
        for i in 0..xs.len() {
            let mut xp = xs.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = xs.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp: f64 = fresh.clone().forward(&xp).iter().sum();
            let fm: f64 = fresh.clone().forward(&xm).iter().sum();
            let num = (fp - fm) / 2e-5;
            assert!((num - dx.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn reverse_rows_flips() {
        let x = Tensor::from_vec(&[3, 1], vec![1., 2., 3.]);
        assert_eq!(reverse_rows(&x).data(), &[3., 2., 1.]);
    }

    #[test]
    fn repeated_calls_reuse_buffers_and_match_fresh_state() {
        // A warmed-up encoder (buffers already sized from a longer input)
        // must produce exactly the results of a cold one.
        for kind in [CellKind::Lstm, CellKind::Gru] {
            let mut rng = StdRng::seed_from_u64(44);
            let warm0 = Rnn::new(kind, 3, 4, &mut rng);
            let mut warm = warm0.clone();
            let long = sample(9, 3, 45);
            warm.forward(&long);
            warm.backward(&[1.0; 4]);
            warm.wx.g.fill_zero();
            warm.wh.g.fill_zero();
            warm.b.g.fill_zero();
            let mut cold = warm0;
            let xs = sample(4, 3, 46);
            let hw = warm.forward(&xs);
            let hc = cold.forward(&xs);
            assert_eq!(hw, hc, "{kind:?} forward diverged after buffer reuse");
            let dw = warm.backward(&[1.0; 4]);
            let dc = cold.backward(&[1.0; 4]);
            assert_eq!(dw, dc, "{kind:?} backward diverged after buffer reuse");
        }
    }
}
