//! Finite-difference gradient checking utilities, used across the layer test
//! suites. Centered differences with `h = 1e-5` against f64 analytic grads.

use crate::param::Param;

const H: f64 = 1e-5;
const TOL: f64 = 1e-5;

/// Checks every parameter gradient of a layer against finite differences of
/// a scalar loss.
///
/// * `params` extracts the layer's parameter list;
/// * `loss` runs a forward pass and reduces to a scalar;
/// * `run_backward` runs forward + backward once so analytic grads are in
///   `Param::g`.
///
/// # Panics
///
/// Panics when any analytic gradient deviates from the numeric one by more
/// than an absolute/relative tolerance.
pub fn check_param_grads<L: Clone>(
    layer: &mut L,
    params: impl Fn(&mut L) -> Vec<&mut Param>,
    loss: impl Fn(&mut L) -> f64,
    run_backward: impl Fn(&mut L),
) {
    // Analytic gradients.
    {
        for p in params(layer) {
            p.zero_grad();
        }
        run_backward(layer);
    }
    let analytic: Vec<Vec<f64>> = params(layer)
        .into_iter()
        .map(|p| p.g.data().to_vec())
        .collect();

    let n_params = analytic.len();
    for pi in 0..n_params {
        let n = analytic[pi].len();
        for i in 0..n {
            let mut lp = layer.clone();
            params(&mut lp)[pi].w.data_mut()[i] += H;
            let fp = loss(&mut lp);
            let mut lm = layer.clone();
            params(&mut lm)[pi].w.data_mut()[i] -= H;
            let fm = loss(&mut lm);
            let num = (fp - fm) / (2.0 * H);
            let ana = analytic[pi][i];
            let scale = 1.0f64.max(num.abs()).max(ana.abs());
            assert!(
                (num - ana).abs() / scale < TOL.max(1e-4),
                "param {pi} elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }
}

/// Checks an input gradient (vector form) against finite differences.
///
/// # Panics
///
/// Panics on deviation beyond tolerance.
pub fn check_input_grad_vec(x: &[f64], loss: impl Fn(&[f64]) -> f64, analytic: Vec<f64>) {
    assert_eq!(x.len(), analytic.len());
    for i in 0..x.len() {
        let mut xp = x.to_vec();
        xp[i] += H;
        let mut xm = x.to_vec();
        xm[i] -= H;
        let num = (loss(&xp) - loss(&xm)) / (2.0 * H);
        let ana = analytic[i];
        let scale = 1.0f64.max(num.abs()).max(ana.abs());
        assert!(
            (num - ana).abs() / scale < 1e-4,
            "input elem {i}: numeric {num} vs analytic {ana}"
        );
    }
}
