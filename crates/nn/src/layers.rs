//! Basic layers: dense, ReLU, dropout, embedding, 1-D convolution, and
//! spatial pyramid pooling. Every layer caches what its backward pass needs
//! and accumulates parameter gradients into [`Param::g`].
//!
//! Each layer has two entry points: the original allocating `forward` /
//! `backward` (kept for tests and gradient checks) and an `_into` /
//! `_inplace` variant that writes into caller-owned buffers. The hot model
//! paths use the latter exclusively, so a warmed-up forward+backward pass
//! performs no heap allocation. Both variants produce bit-identical values
//! (the allocating ones are thin wrappers).

use crate::kernels::{self, Workspace};
use crate::param::Param;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Fully-connected layer on vectors: `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix `(out × in)`.
    pub w: Param,
    /// Bias `(out)`.
    pub b: Param,
    cache_x: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Dense {
        Dense {
            w: Param::xavier(&[output, input], input, output, rng),
            b: Param::zeros(&[output]),
            cache_x: Vec::new(),
        }
    }

    /// Forward pass writing into a caller-owned output buffer.
    pub fn forward_into(&mut self, x: &[f64], y: &mut Vec<f64>) {
        let (out, inp) = (self.w.w.rows(), self.w.w.cols());
        assert_eq!(x.len(), inp);
        self.cache_x.clear();
        self.cache_x.extend_from_slice(x);
        y.clear();
        y.resize(out, 0.0);
        kernels::matvec_into(y, self.w.w.data(), x, out, inp);
        for (yo, bo) in y.iter_mut().zip(self.b.w.data()) {
            *yo += bo;
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.forward_into(x, &mut y);
        y
    }

    /// Backward pass writing `dx` into a caller-owned buffer.
    pub fn backward_into(&mut self, dy: &[f64], dx: &mut Vec<f64>) {
        let (out, inp) = (self.w.w.rows(), self.w.w.cols());
        assert_eq!(dy.len(), out);
        for i in 0..out {
            self.b.g.data_mut()[i] += dy[i];
            let gi = dy[i];
            let wrow = &mut self.w.g.data_mut()[i * inp..(i + 1) * inp];
            for (gw, &x) in wrow.iter_mut().zip(&self.cache_x) {
                *gw += gi * x;
            }
        }
        dx.clear();
        dx.resize(inp, 0.0);
        for i in 0..out {
            let wrow = &self.w.w.data()[i * inp..(i + 1) * inp];
            for (dxj, &w) in dx.iter_mut().zip(wrow) {
                *dxj += dy[i] * w;
            }
        }
    }

    /// Backward pass: accumulates dW/db, returns dx.
    pub fn backward(&mut self, dy: &[f64]) -> Vec<f64> {
        let mut dx = Vec::new();
        self.backward_into(dy, &mut dx);
        dx
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Elementwise ReLU on a tensor.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Relu {
        Relu::default()
    }

    /// Forward pass rectifying `x` in place.
    pub fn forward_inplace(&mut self, x: &mut Tensor) {
        self.mask.clear();
        self.mask.extend(x.data().iter().map(|&v| v > 0.0));
        for v in x.data_mut() {
            *v = v.max(0.0);
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.forward_inplace(&mut y);
        y
    }

    /// Backward pass masking `dy` in place.
    pub fn backward_inplace(&self, dy: &mut Tensor) {
        for (g, &m) in dy.data_mut().iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
    }

    /// Backward pass.
    pub fn backward(&self, dy: &Tensor) -> Tensor {
        let mut dx = dy.clone();
        self.backward_inplace(&mut dx);
        dx
    }

    /// Vector convenience forward, in place.
    pub fn forward_vec_inplace(&mut self, x: &mut [f64]) {
        self.mask.clear();
        self.mask.extend(x.iter().map(|&v| v > 0.0));
        for v in x.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Vector convenience forward.
    pub fn forward_vec(&mut self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.forward_vec_inplace(&mut y);
        y
    }

    /// Vector convenience backward, in place.
    pub fn backward_vec_inplace(&self, dy: &mut [f64]) {
        for (g, &m) in dy.iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
    }

    /// Vector convenience backward.
    pub fn backward_vec(&self, dy: &[f64]) -> Vec<f64> {
        let mut dx = dy.to_vec();
        self.backward_vec_inplace(&mut dx);
        dx
    }
}

/// Inverted dropout on vectors.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability.
    pub p: f64,
    mask: Vec<f64>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    pub fn new(p: f64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
        Dropout {
            p,
            mask: Vec::new(),
        }
    }

    /// Forward pass scaling `x` in place; identity when `train` is false.
    /// Consumes exactly the same RNG stream as the allocating variant.
    pub fn forward_inplace(&mut self, x: &mut [f64], train: bool, rng: &mut StdRng) {
        self.mask.clear();
        if !train || self.p == 0.0 {
            self.mask.resize(x.len(), 1.0);
            return;
        }
        let keep = 1.0 - self.p;
        for v in x.iter_mut() {
            let m = if rng.gen::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            };
            self.mask.push(m);
            *v *= m;
        }
    }

    /// Forward pass; identity when `train` is false.
    pub fn forward(&mut self, x: &[f64], train: bool, rng: &mut StdRng) -> Vec<f64> {
        let mut y = x.to_vec();
        self.forward_inplace(&mut y, train, rng);
        y
    }

    /// Backward pass masking `dy` in place.
    pub fn backward_inplace(&self, dy: &mut [f64]) {
        for (g, &m) in dy.iter_mut().zip(&self.mask) {
            *g *= m;
        }
    }

    /// Backward pass.
    pub fn backward(&self, dy: &[f64]) -> Vec<f64> {
        let mut dx = dy.to_vec();
        self.backward_inplace(&mut dx);
        dx
    }
}

/// Token-id embedding lookup: ids → `(L × D)`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The `(V × D)` table.
    pub table: Param,
    cache_ids: Vec<usize>,
}

impl Embedding {
    /// Creates an embedding from a pre-trained `(V × D)` table (e.g.
    /// word2vec output). The table remains trainable.
    pub fn from_table(table: Tensor) -> Embedding {
        let g = Tensor::zeros(table.shape());
        Embedding {
            table: Param { w: table, g },
            cache_ids: Vec::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.w.cols()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.w.rows()
    }

    /// Looks up a sequence of ids into a caller-owned `(L × D)` tensor
    /// (out-of-range ids map to row 0).
    pub fn forward_into(&mut self, ids: &[usize], out: &mut Tensor) {
        self.cache_ids.clear();
        self.cache_ids.extend_from_slice(ids);
        let d = self.dim();
        let vocab = self.vocab();
        out.resize(&[ids.len(), d]);
        for (t, &id) in ids.iter().enumerate() {
            let id = if id < vocab { id } else { 0 };
            out.row_mut(t).copy_from_slice(self.table.w.row(id));
        }
    }

    /// Looks up a sequence of ids (out-of-range ids map to row 0).
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[0, 0]);
        self.forward_into(ids, &mut out);
        out
    }

    /// Accumulates gradients for the looked-up rows.
    pub fn backward(&mut self, d_out: &Tensor) {
        let d = self.dim();
        let vocab = self.vocab();
        for (t, &id) in self.cache_ids.iter().enumerate() {
            let id = if id < vocab { id } else { 0 };
            let src = d_out.row(t);
            let dst = &mut self.table.g.data_mut()[id * d..(id + 1) * d];
            for (g, &s) in dst.iter_mut().zip(src) {
                *g += s;
            }
        }
    }
}

/// 1-D convolution over a `(L × C_in)` sequence with 'same' zero padding.
///
/// Forward and backward are lowered to im2col + one GEMM each (see
/// `kernels`): forward multiplies the `(L × k·C_in)` im2col matrix of the
/// input by the transposed kernel into a bias-initialized output; backward
/// gets `dW` from `dyᵀ · cols` and `dx` from the im2col matrix of `dy`
/// times the tap-reversed kernel. The accumulation order of every output
/// element matches the original scalar loops, so results are bit-identical
/// (the property tests in `kernels` pin this against the frozen loops).
#[derive(Debug, Clone)]
pub struct Conv1d {
    /// Kernel `(C_out × k × C_in)`.
    pub w: Param,
    /// Bias `(C_out)`.
    pub b: Param,
    k: usize,
    c_in: usize,
    c_out: usize,
    /// The `(L × k·C_in)` im2col matrix of the last input — the only
    /// forward state backward needs (replacing the old full-input clone;
    /// the GEMM-form weight gradient consumes it directly).
    cols: Tensor,
}

impl Conv1d {
    /// Creates a convolution with kernel width `k` (must be odd for 'same'
    /// padding).
    ///
    /// # Panics
    ///
    /// Panics when `k` is even.
    pub fn new(c_in: usize, c_out: usize, k: usize, rng: &mut StdRng) -> Conv1d {
        assert!(k % 2 == 1, "kernel width must be odd for same padding");
        Conv1d {
            w: Param::xavier(&[c_out, k * c_in], k * c_in, c_out, rng),
            b: Param::zeros(&[c_out]),
            k,
            c_in,
            c_out,
            cols: Tensor::zeros(&[0, 0]),
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Forward pass into a caller-owned output: `(L × C_in) → (L × C_out)`.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, ws: &mut Workspace) {
        assert_eq!(x.cols(), self.c_in);
        let l = x.rows();
        let kc = self.k * self.c_in;
        self.cols.resize(&[l, kc]);
        kernels::im2col_into(self.cols.data_mut(), x.data(), l, self.c_in, self.k);
        let mut wt = ws.acquire(kc * self.c_out);
        kernels::transpose_into(&mut wt, self.w.w.data(), self.c_out, kc);
        out.resize(&[l, self.c_out]);
        for t in 0..l {
            out.row_mut(t).copy_from_slice(self.b.w.data());
        }
        kernels::gemm_acc(out.data_mut(), self.cols.data(), &wt, l, kc, self.c_out);
        ws.release(wt);
    }

    /// Forward pass: `(L × C_in) → (L × C_out)`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[0, 0]);
        self.forward_into(x, &mut out, &mut ws);
        out
    }

    /// Backward pass into a caller-owned `dx`: accumulates kernel/bias
    /// grads.
    pub fn backward_into(&mut self, dy: &Tensor, dx: &mut Tensor, ws: &mut Workspace) {
        let l = self.cols.rows();
        let kc = self.k * self.c_in;
        let kco = self.k * self.c_out;
        assert_eq!(dy.rows(), l);
        assert_eq!(dy.cols(), self.c_out);
        // Bias: per channel, positions in ascending order, zeros skipped —
        // the original loop's accumulation order.
        {
            let bg = self.b.g.data_mut();
            for t in 0..l {
                for (g, &v) in bg.iter_mut().zip(dy.row(t)) {
                    if v != 0.0 {
                        *g += v;
                    }
                }
            }
        }
        // dW += dyᵀ · cols: the GEMM's k-dimension is t ascending with the
        // dy == 0 skip, matching the original loop per kernel element.
        let mut dyt = ws.acquire(self.c_out * l);
        kernels::transpose_into(&mut dyt, dy.data(), l, self.c_out);
        kernels::gemm_acc(
            self.w.g.data_mut(),
            &dyt,
            self.cols.data(),
            self.c_out,
            l,
            kc,
        );
        ws.release(dyt);
        // dx = im2col(dy) · W_flip, where W_flip row (jr·C_out + co) is the
        // kernel tap j = k−1−jr of output channel co. Ascending
        // (jr, co) visits exactly the (source position, channel) pairs of
        // the original scatter loop in the same order, with the same skips.
        let mut ycols = ws.acquire(l * kco);
        kernels::im2col_into(&mut ycols, dy.data(), l, self.c_out, self.k);
        let mut wflip = ws.acquire(kco * self.c_in);
        for jr in 0..self.k {
            let j = self.k - 1 - jr;
            for co in 0..self.c_out {
                let src = &self.w.w.data()[co * kc + j * self.c_in..co * kc + (j + 1) * self.c_in];
                wflip[(jr * self.c_out + co) * self.c_in..(jr * self.c_out + co + 1) * self.c_in]
                    .copy_from_slice(src);
            }
        }
        dx.resize(&[l, self.c_in]);
        dx.fill_zero();
        kernels::gemm_acc(dx.data_mut(), &ycols, &wflip, l, kco, self.c_in);
        ws.release(wflip);
        ws.release(ycols);
    }

    /// Backward pass: accumulates kernel/bias grads, returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut dx = Tensor::zeros(&[0, 0]);
        self.backward_into(dy, &mut dx, &mut ws);
        dx
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Spatial pyramid pooling over a `(L × C)` map.
///
/// The length axis is divided into `bins` segments per level (the paper uses
/// 4, 2, 1); each segment is max-pooled per channel and the results are
/// concatenated into a fixed `(Σbins) × C` vector — independent of `L`, which
/// is what frees the network from fixed-length inputs.
#[derive(Debug, Clone)]
pub struct Spp {
    /// Pyramid levels (segments per level).
    pub bins: Vec<usize>,
    argmax: Vec<usize>,
    in_shape: [usize; 2],
}

impl Spp {
    /// Creates an SPP layer with the paper's 4/2/1 pyramid.
    pub fn paper() -> Spp {
        Spp::new(vec![4, 2, 1])
    }

    /// Creates an SPP layer with custom levels.
    pub fn new(bins: Vec<usize>) -> Spp {
        assert!(!bins.is_empty());
        Spp {
            bins,
            argmax: Vec::new(),
            in_shape: [0, 0],
        }
    }

    /// Output length: `(Σ bins) × C`.
    pub fn out_len(&self, channels: usize) -> usize {
        self.bins.iter().sum::<usize>() * channels
    }

    /// Forward pass into a caller-owned buffer: `(L × C) → flat vector`.
    ///
    /// An empty input (a degenerate gadget that normalized to zero tokens)
    /// pools to an all-zero vector instead of panicking; `backward` then
    /// routes no gradient.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Vec<f64>) {
        let (l, c) = (x.rows(), x.cols());
        self.in_shape = [l, c];
        let total: usize = self.bins.iter().sum();
        out.clear();
        out.resize(total * c, 0.0);
        self.argmax.clear();
        if l == 0 {
            return;
        }
        self.argmax.resize(total * c, 0);
        let mut slot = 0;
        for &b in &self.bins {
            for seg in 0..b {
                // Segment [start, end): ceil-split so every segment is
                // non-empty even when L < b (segments then overlap-free by
                // clamping, duplicating the last position when needed).
                let start = (seg * l) / b;
                let mut end = ((seg + 1) * l) / b;
                if end <= start {
                    end = (start + 1).min(l);
                }
                let start = start.min(l - 1);
                for ch in 0..c {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_t = start;
                    for t in start..end.max(start + 1) {
                        let v = x.at(t, ch);
                        if v > best {
                            best = v;
                            best_t = t;
                        }
                    }
                    out[slot * c + ch] = best;
                    self.argmax[slot * c + ch] = best_t;
                }
                slot += 1;
            }
        }
    }

    /// Forward pass: `(L × C) → flat vector`.
    pub fn forward(&mut self, x: &Tensor) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_into(x, &mut out);
        out
    }

    /// Backward pass into a caller-owned `dx`: routes gradients to the
    /// argmax positions.
    pub fn backward_into(&self, dy: &[f64], dx: &mut Tensor) {
        let [l, c] = self.in_shape;
        dx.resize(&[l, c]);
        dx.fill_zero();
        if l == 0 {
            return;
        }
        for (i, &g) in dy.iter().enumerate() {
            let ch = i % c;
            let t = self.argmax[i];
            dx.add_at(t, ch, g);
        }
    }

    /// Backward pass: routes gradients to the argmax positions.
    pub fn backward(&self, dy: &[f64]) -> Tensor {
        let mut dx = Tensor::zeros(&[0, 0]);
        self.backward_into(dy, &mut dx);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_input_grad_vec, check_param_grads};
    use crate::kernels::reference;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_known() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w.w = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        d.b.w = Tensor::vector(&[0.5, -0.5]);
        assert_eq!(d.forward(&[1., 1.]), vec![3.5, 6.5]);
    }

    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = vec![0.3, -0.7, 1.1];
        check_param_grads(
            &mut d,
            |l| l.params_mut(),
            |l| {
                let y = l.forward(&x);
                y.iter().sum()
            },
            |l| {
                l.forward(&x);
                l.backward(&[1.0, 1.0]);
            },
        );
        check_input_grad_vec(
            &x,
            |xs| {
                let mut d2 = d.clone();
                d2.forward(xs).iter().sum()
            },
            {
                let mut d2 = d.clone();
                d2.forward(&x);
                d2.backward(&[1.0, 1.0])
            },
        );
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::vector(&[-1.0, 2.0]));
        assert_eq!(y.data(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::vector(&[5.0, 5.0]));
        assert_eq!(dx.data(), &[0.0, 5.0]);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_scales() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dropout::new(0.5);
        let x = vec![1.0; 1000];
        let y = d.forward(&x, false, &mut rng);
        assert_eq!(y, x);
        let y = d.forward(&x, true, &mut rng);
        let mean = y.iter().sum::<f64>() / 1000.0;
        assert!(
            (mean - 1.0).abs() < 0.15,
            "inverted dropout keeps scale, mean={mean}"
        );
        let dy = d.backward(&vec![1.0; 1000]);
        assert_eq!(dy, d.mask);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let table = Tensor::from_vec(&[3, 2], vec![0., 0., 1., 2., 3., 4.]);
        let mut e = Embedding::from_table(table);
        let out = e.forward(&[2, 1, 2]);
        assert_eq!(out.row(0), &[3., 4.]);
        assert_eq!(out.row(1), &[1., 2.]);
        let mut dy = Tensor::zeros(&[3, 2]);
        dy.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        dy.row_mut(2).copy_from_slice(&[1.0, 1.0]);
        e.backward(&dy);
        assert_eq!(e.table.g.row(2), &[2.0, 2.0]);
        assert_eq!(e.table.g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn embedding_out_of_range_maps_to_zero_row() {
        let table = Tensor::from_vec(&[2, 1], vec![9., 5.]);
        let mut e = Embedding::from_table(table);
        let out = e.forward(&[7]);
        assert_eq!(out.row(0), &[9.0]);
    }

    #[test]
    fn conv1d_same_padding_shape_and_known_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        c.w.w = Tensor::from_vec(&[1, 3], vec![1.0, 1.0, 1.0]);
        c.b.w = Tensor::vector(&[0.0]);
        let x = Tensor::from_vec(&[4, 1], vec![1., 2., 3., 4.]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[4, 1]);
        // moving sum with zero pads: [1+2, 1+2+3, 2+3+4, 3+4]
        assert_eq!(y.data(), &[3., 6., 9., 7.]);
    }

    #[test]
    fn conv1d_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Conv1d::new(2, 3, 3, &mut rng);
        let x = Tensor::from_vec(&[5, 2], (0..10).map(|i| (i as f64) * 0.1 - 0.4).collect());
        check_param_grads(
            &mut c,
            |l| l.params_mut(),
            |l| l.forward(&x).sum(),
            |l| {
                let y = l.forward(&x);
                l.backward(&Tensor::full(y.shape(), 1.0));
            },
        );
        let mut c2 = c.clone();
        let y = c2.forward(&x);
        let dx = c2.backward(&Tensor::full(y.shape(), 1.0));
        // Finite-difference on input.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp = c.clone().forward(&xp).sum();
            let fm = c.clone().forward(&xm).sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-6,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    /// The full layer (not just the raw kernels) against the frozen naive
    /// loops: forward, weight/bias/input grads, all `to_bits`-identical,
    /// across lengths including the L=0 and L=1 edges.
    #[test]
    fn conv1d_bit_identical_to_frozen_naive_loops() {
        for (l, c_in, c_out, k) in [(0, 2, 3, 3), (1, 1, 1, 1), (1, 2, 3, 5), (7, 3, 4, 3)] {
            let mut rng = StdRng::seed_from_u64(42 + l as u64);
            let mut conv = Conv1d::new(c_in, c_out, k, &mut rng);
            let x = Tensor::from_vec(
                &[l, c_in],
                (0..l * c_in)
                    .map(|i| ((i * 7 + 3) % 11) as f64 * 0.25 - 1.0)
                    .collect(),
            );
            let dy = Tensor::from_vec(
                &[l, c_out],
                (0..l * c_out)
                    .map(|i| {
                        if i % 4 == 0 {
                            0.0
                        } else {
                            (i % 5) as f64 * 0.5 - 1.0
                        }
                    })
                    .collect(),
            );
            let y = conv.forward(&x);
            let dx = conv.backward(&dy);
            let naive_y = reference::conv1d_forward_naive(
                x.data(),
                conv.w.w.data(),
                conv.b.w.data(),
                l,
                c_in,
                c_out,
                k,
            );
            let (ndb, ndw, ndx) = reference::conv1d_backward_naive(
                x.data(),
                conv.w.w.data(),
                dy.data(),
                l,
                c_in,
                c_out,
                k,
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(y.data()), bits(&naive_y), "forward L={l}");
            assert_eq!(bits(dx.data()), bits(&ndx), "dx L={l}");
            assert_eq!(bits(conv.w.g.data()), bits(&ndw), "dw L={l}");
            assert_eq!(bits(conv.b.g.data()), bits(&ndb), "db L={l}");
        }
    }

    #[test]
    fn spp_output_is_length_independent() {
        let mut spp = Spp::paper();
        for l in [1usize, 3, 7, 50, 500] {
            let x = Tensor::from_vec(&[l, 2], (0..l * 2).map(|i| i as f64).collect());
            let y = spp.forward(&x);
            assert_eq!(y.len(), 7 * 2, "L={l}");
        }
    }

    #[test]
    fn spp_max_pools_each_segment() {
        let mut spp = Spp::new(vec![2]);
        let x = Tensor::from_vec(&[4, 1], vec![1., 9., 2., 3.]);
        let y = spp.forward(&x);
        assert_eq!(y, vec![9., 3.]);
        let dx = spp.backward(&[1.0, 1.0]);
        assert_eq!(dx.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn spp_empty_input_pools_to_zeros() {
        let mut spp = Spp::paper();
        let x = Tensor::zeros(&[0, 3]);
        let y = spp.forward(&x);
        assert_eq!(y.len(), 7 * 3);
        assert!(y.iter().all(|&v| v == 0.0));
        let dx = spp.backward(&vec![1.0; y.len()]);
        assert_eq!(dx.shape(), &[0, 3]);
    }

    #[test]
    fn spp_gradient_routes_to_argmax() {
        let mut spp = Spp::paper();
        let x = Tensor::from_vec(&[6, 1], vec![0., 5., 1., 2., 8., 3.]);
        let y = spp.forward(&x);
        let dy = vec![1.0; y.len()];
        let dx = spp.backward(&dy);
        // Gradient mass equals output count; the global max (t=4, value 8)
        // wins its segment at every pyramid level, so it collects at least 3.
        assert_eq!(dx.sum(), y.len() as f64);
        assert!(dx.at(4, 0) >= 3.0);
    }
}
