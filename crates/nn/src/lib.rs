// Backprop math indexes several parallel arrays per loop; iterator
// rewrites obscure the equations, so the pedantic loop lints are off.
#![allow(clippy::needless_range_loop)]

//! # sevuldet-nn
//!
//! A from-scratch neural-network library sized for the SEVulDet
//! reproduction: f64 tensors, dense / 1-D convolution / dropout / embedding
//! layers, **spatial pyramid pooling** (the paper's flexible-length enabler),
//! the **multilayer attention mechanism** (token attention + CBAM channel &
//! spatial attention), LSTM/GRU cells with BPTT for the bidirectional RNN
//! baselines, BCE loss, and SGD/Adam optimizers.
//!
//! Every layer's backward pass is verified against centered finite
//! differences in the test suite.
//!
//! ## Example
//!
//! ```
//! use sevuldet_nn::{SevulDetCnn, CnnConfig, SequenceClassifier, Tensor};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let table = Tensor::zeros(&[16, 8]); // (vocab × dim), normally word2vec
//! let mut net = SevulDetCnn::new(table, CnnConfig::default(), &mut rng);
//! let logit = net.forward_logit(&[1, 2, 3, 4, 5], false, &mut rng);
//! assert!(logit.is_finite());
//! ```

pub mod attention;
pub mod engine;
pub mod gradcheck;
pub mod kernels;
pub mod kernels_f32;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod param;
pub mod rnn;
pub mod serialize;
pub mod tensor;

pub use attention::{Cbam, CbamOrder, TokenAttention};
pub use engine::{calibrate, EngineError, FastCnn, Precision, QUANT_SITES};
pub use kernels::{workspace_counters, Workspace};
pub use kernels_f32::simd_level;
pub use layers::{Conv1d, Dense, Dropout, Embedding, Relu, Spp};
pub use loss::{bce_with_logits, bce_with_logits_weighted};
pub use models::{CnnConfig, RnnNet, SequenceClassifier, SevulDetCnn};
pub use optim::{Adam, Sgd};
pub use param::Param;
pub use rnn::{BiRnn, CellKind, Rnn};
pub use serialize::{load_params, save_params, LoadError};
pub use tensor::{sigmoid, softmax, softmax_into, Tensor};
