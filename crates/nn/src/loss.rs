//! Binary cross-entropy loss on logits (numerically stable).

use crate::tensor::sigmoid;

/// Computes BCE-with-logits loss and its gradient w.r.t. the logit.
///
/// `target` is 0.0 or 1.0. Returns `(loss, dloss/dlogit)`.
pub fn bce_with_logits(logit: f64, target: f64) -> (f64, f64) {
    // loss = max(z,0) − z·y + ln(1 + e^(−|z|))
    let z = logit;
    let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
    let grad = sigmoid(z) - target;
    (loss, grad)
}

/// Weighted variant: scales the positive-class contribution by `pos_weight`
/// (useful on the paper's imbalanced corpora).
pub fn bce_with_logits_weighted(logit: f64, target: f64, pos_weight: f64) -> (f64, f64) {
    let (l, g) = bce_with_logits(logit, target);
    if target > 0.5 {
        (l * pos_weight, g * pos_weight)
    } else {
        (l, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_when_confidently_correct() {
        let (l_good, _) = bce_with_logits(5.0, 1.0);
        let (l_bad, _) = bce_with_logits(-5.0, 1.0);
        assert!(l_good < 0.01);
        assert!(l_bad > 4.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for &(z, y) in &[(0.3, 1.0), (-2.0, 0.0), (4.0, 0.0), (-1.5, 1.0)] {
            let (_, g) = bce_with_logits(z, y);
            let h = 1e-6;
            let (lp, _) = bce_with_logits(z + h, y);
            let (lm, _) = bce_with_logits(z - h, y);
            let num = (lp - lm) / (2.0 * h);
            assert!((num - g).abs() < 1e-6, "z={z} y={y}: {num} vs {g}");
        }
    }

    #[test]
    fn stable_at_extreme_logits() {
        let (l, g) = bce_with_logits(1000.0, 0.0);
        assert!(l.is_finite() && g.is_finite());
        let (l, g) = bce_with_logits(-1000.0, 1.0);
        assert!(l.is_finite() && g.is_finite());
    }

    #[test]
    fn pos_weight_scales_positive_class_only() {
        let (l1, g1) = bce_with_logits(0.5, 1.0);
        let (l2, g2) = bce_with_logits_weighted(0.5, 1.0, 3.0);
        assert!((l2 - 3.0 * l1).abs() < 1e-12);
        assert!((g2 - 3.0 * g1).abs() < 1e-12);
        let (l3, _) = bce_with_logits_weighted(0.5, 0.0, 3.0);
        let (l4, _) = bce_with_logits(0.5, 0.0);
        assert_eq!(l3, l4);
    }
}
