//! The fast inference tiers of the kernel layer: f32 SIMD GEMM / matvec /
//! im2col plus int8 integer GEMM / matvec with i32 accumulation.
//!
//! Unlike [`crate::kernels`], nothing here promises bit-identity with the
//! f64 reference loops — these routines trade exact accumulation order for
//! memory traffic (f32 halves it, int8 quarters it) and for SIMD width. On
//! x86-64 the hot loops dispatch at runtime to AVX2+FMA bodies when the CPU
//! supports them; everywhere else (and on other architectures) a manually
//! 4-wide-unrolled scalar body runs instead. Dispatch is cached in a
//! `OnceLock`, so the feature probe costs one atomic load per call.
//!
//! Accuracy envelope (asserted by the round-trip proptests below and by the
//! `precision_tiers` integration test):
//!
//! * f32: per-element GEMM error is bounded by `k · ε_f32 · max|a|·max|b|`
//!   (≈ 1e-5 relative at the model's `k = 90`); end-to-end sigmoid scores
//!   stay within `1e-3` of the f64 reference.
//! * int8: symmetric per-tensor quantization `q = round(v / s)` clamped to
//!   `[-127, 127]`; products accumulate exactly in i32, so all error comes
//!   from the two rounding steps. End-to-end sigmoid scores stay within
//!   `1e-1` of the f64 reference (well-trained models typically land far
//!   inside that; the bound covers per-tensor scale granularity across all
//!   five quantized products).

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// Whether the AVX2+FMA fast paths are active on this machine. Returns
/// `"avx2+fma"` or `"scalar"`; surfaced in benches and `/metrics` notes so
/// recorded numbers say which body produced them.
pub fn simd_level() -> &'static str {
    if avx2_fma() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_fma() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_fma() -> bool {
    false
}

// ---- f32 kernels ----

/// `out += a · b` for row-major f32 `a (m×k)`, `b (k×n)`, `out (m×n)`.
/// `out` must be caller-initialized (zeros, or bias rows for a fused
/// conv/dense product). No zero-skip: every term is accumulated.
pub fn gemm_f32(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "gemm_f32 out {m}x{n}");
    assert_eq!(a.len(), m * k, "gemm_f32 a {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm_f32 b {k}x{n}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: avx2+fma verified at runtime; slice lengths asserted above.
        unsafe { gemm_f32_avx2(out, a, b, m, k, n) };
        return;
    }
    gemm_f32_scalar(out, a, b, m, k, n);
}

/// Scalar body: per output row, broadcast each `a[i][p]` over a 4-wide
/// unrolled pass of `b`'s row `p`.
fn gemm_f32_scalar(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                orow[j] += av * brow[j];
                orow[j + 1] += av * brow[j + 1];
                orow[j + 2] += av * brow[j + 2];
                orow[j + 3] += av * brow[j + 3];
                j += 4;
            }
            while j < n {
                orow[j] += av * brow[j];
                j += 1;
            }
        }
    }
}

/// AVX2+FMA body: each 8-column strip of an output row is a register
/// accumulator over the whole k-loop, so `out` is loaded and stored once
/// per strip instead of once per `p` — `b` (k×n ≈ 11 KiB at model shape)
/// streams from L1.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_f32_avx2(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let orow = out.as_mut_ptr().add(i * n);
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_ps(orow.add(j));
            let mut bp = b.as_ptr().add(j);
            for p in 0..k {
                acc = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(p)), _mm256_loadu_ps(bp), acc);
                bp = bp.add(n);
            }
            _mm256_storeu_ps(orow.add(j), acc);
            j += 8;
        }
        while j < n {
            let mut s = *orow.add(j);
            for p in 0..k {
                s += *arow.add(p) * *b.get_unchecked(p * n + j);
            }
            *orow.add(j) = s;
            j += 1;
        }
    }
}

/// `y = a · x` for row-major f32 `a (m×k)` and `x (k)`. Overwrites `y`.
pub fn matvec_f32(y: &mut [f32], a: &[f32], x: &[f32], m: usize, k: usize) {
    assert_eq!(y.len(), m, "matvec_f32 y {m}");
    assert_eq!(a.len(), m * k, "matvec_f32 a {m}x{k}");
    assert_eq!(x.len(), k, "matvec_f32 x {k}");
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: avx2+fma verified at runtime; slice lengths asserted above.
        unsafe { matvec_f32_avx2(y, a, x, m, k) };
        return;
    }
    matvec_f32_scalar(y, a, x, m, k);
}

/// Scalar body: four independent accumulators per row hide the FP add
/// latency chain; the tail folds in whatever is left.
fn matvec_f32_scalar(y: &mut [f32], a: &[f32], x: &[f32], m: usize, k: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut p = 0;
        while p + 4 <= k {
            s0 += arow[p] * x[p];
            s1 += arow[p + 1] * x[p + 1];
            s2 += arow[p + 2] * x[p + 2];
            s3 += arow[p + 3] * x[p + 3];
            p += 4;
        }
        let mut s = (s0 + s1) + (s2 + s3);
        while p < k {
            s += arow[p] * x[p];
            p += 1;
        }
        y[i] = s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matvec_f32_avx2(y: &mut [f32], a: &[f32], x: &[f32], m: usize, k: usize) {
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let mut acc = _mm256_setzero_ps();
        let mut p = 0;
        while p + 8 <= k {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(arow.add(p)),
                _mm256_loadu_ps(x.as_ptr().add(p)),
                acc,
            );
            p += 8;
        }
        let mut s = hsum256_ps(acc);
        while p < k {
            s += *arow.add(p) * *x.get_unchecked(p);
            p += 1;
        }
        *y.get_unchecked_mut(i) = s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256_ps(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

/// f32 im2col: lowers `x (l×c)` into `cols (l × kw·c)` with same-padding
/// (`pad = kw/2`); out-of-range taps are written as zero. `cols` must be
/// pre-sized to `l · kw · c`. Same layout as the f64 `im2col_into`.
pub fn im2col_f32(cols: &mut [f32], x: &[f32], l: usize, c: usize, kw: usize) {
    let kc = kw * c;
    assert_eq!(cols.len(), l * kc, "im2col_f32 cols {l}x{kc}");
    assert_eq!(x.len(), l * c, "im2col_f32 x {l}x{c}");
    let pad = (kw / 2) as isize;
    for t in 0..l {
        let dst = &mut cols[t * kc..(t + 1) * kc];
        for j in 0..kw {
            let src = t as isize + j as isize - pad;
            let tap = &mut dst[j * c..(j + 1) * c];
            if src < 0 || src >= l as isize {
                tap.fill(0.0);
            } else {
                let s = src as usize;
                tap.copy_from_slice(&x[s * c..(s + 1) * c]);
            }
        }
    }
}

/// f32 transpose: `out (n×m)` = `a (m×n)`ᵀ. `out` must be pre-sized.
pub fn transpose_f32(out: &mut [f32], a: &[f32], m: usize, n: usize) {
    assert_eq!(out.len(), m * n, "transpose_f32 out {n}x{m}");
    assert_eq!(a.len(), m * n, "transpose_f32 a {m}x{n}");
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

// ---- int8 kernels ----

/// Largest absolute value in `src` (0.0 for an empty slice). The symmetric
/// calibration scale for a tensor is `max_abs / 127`.
pub fn max_abs_f32(src: &[f32]) -> f32 {
    src.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Symmetric per-tensor quantization: `q = round(v / scale)` clamped to
/// `[-127, 127]`. `out` is cleared and refilled; a non-positive `scale`
/// maps everything to zero (the tensor was all-zero at calibration).
pub fn quantize_i8(out: &mut Vec<i8>, src: &[f32], scale: f32) {
    out.clear();
    if scale <= 0.0 {
        out.resize(src.len(), 0);
        return;
    }
    let inv = 1.0 / scale;
    out.extend(
        src.iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
    );
}

/// `out += a · b` for row-major int8 `a (m×k)`, `b (k×n)` accumulating
/// exactly into i32 `out (m×n)`. `out` must be caller-initialized.
pub fn gemm_i8(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    assert_eq!(out.len(), m * n, "gemm_i8 out {m}x{n}");
    assert_eq!(a.len(), m * k, "gemm_i8 a {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm_i8 b {k}x{n}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: avx2 verified at runtime; slice lengths asserted above.
        unsafe { gemm_i8_avx2(out, a, b, m, k, n) };
        return;
    }
    gemm_i8_scalar(out, a, b, m, k, n);
}

fn gemm_i8_scalar(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &b[p * n..(p + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                orow[j] += av * brow[j] as i32;
                orow[j + 1] += av * brow[j + 1] as i32;
                orow[j + 2] += av * brow[j + 2] as i32;
                orow[j + 3] += av * brow[j + 3] as i32;
                j += 4;
            }
            while j < n {
                orow[j] += av * brow[j] as i32;
                j += 1;
            }
        }
    }
}

/// AVX2 body: 8-wide i32 strip accumulators; each `b` octet is widened
/// with `cvtepi8_epi32` and multiplied against the broadcast `a` element.
/// Integer adds are exact, so this matches the scalar body bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_i8_avx2(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let orow = out.as_mut_ptr().add(i * n);
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_loadu_si256(orow.add(j) as *const __m256i);
            for p in 0..k {
                let av = _mm256_set1_epi32(*arow.add(p) as i32);
                let bv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                    b.as_ptr().add(p * n + j) as *const __m128i
                ));
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(av, bv));
            }
            _mm256_storeu_si256(orow.add(j) as *mut __m256i, acc);
            j += 8;
        }
        while j < n {
            let mut s = *orow.add(j);
            for p in 0..k {
                s += (*arow.add(p) as i32) * (*b.get_unchecked(p * n + j) as i32);
            }
            *orow.add(j) = s;
            j += 1;
        }
    }
}

/// `y = a · x` for row-major int8 `a (m×k)`, `x (k)`, exact i32 sums.
/// Overwrites `y`.
pub fn matvec_i8(y: &mut [i32], a: &[i8], x: &[i8], m: usize, k: usize) {
    assert_eq!(y.len(), m, "matvec_i8 y {m}");
    assert_eq!(a.len(), m * k, "matvec_i8 a {m}x{k}");
    assert_eq!(x.len(), k, "matvec_i8 x {k}");
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: avx2 verified at runtime; slice lengths asserted above.
        unsafe { matvec_i8_avx2(y, a, x, m, k) };
        return;
    }
    matvec_i8_scalar(y, a, x, m, k);
}

fn matvec_i8_scalar(y: &mut [i32], a: &[i8], x: &[i8], m: usize, k: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
        let mut p = 0;
        while p + 4 <= k {
            s0 += arow[p] as i32 * x[p] as i32;
            s1 += arow[p + 1] as i32 * x[p + 1] as i32;
            s2 += arow[p + 2] as i32 * x[p + 2] as i32;
            s3 += arow[p + 3] as i32 * x[p + 3] as i32;
            p += 4;
        }
        let mut s = s0 + s1 + s2 + s3;
        while p < k {
            s += arow[p] as i32 * x[p] as i32;
            p += 1;
        }
        y[i] = s;
    }
}

/// AVX2 body: i8 pairs widen to i16 and `madd_epi16` folds them into i32
/// lanes (products are ≤ 127², so the i16→i32 pairwise sum cannot
/// overflow).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_i8_avx2(y: &mut [i32], a: &[i8], x: &[i8], m: usize, k: usize) {
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let mut acc = _mm256_setzero_si256();
        let mut p = 0;
        while p + 16 <= k {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.add(p) as *const __m128i));
            let vx = _mm256_cvtepi8_epi16(_mm_loadu_si128(x.as_ptr().add(p) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vx));
            p += 16;
        }
        let mut s = hsum256_epi32(acc);
        while p < k {
            s += (*arow.add(p) as i32) * (*x.get_unchecked(p) as i32);
            p += 1;
        }
        *y.get_unchecked_mut(i) = s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum256_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
    _mm_cvtsi128_si32(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn value() -> BoxedStrategy<f64> {
        prop_oneof![
            2 => any::<f64>().prop_map(|v| (v - 0.5) * 4.0),
            1 => Just(0.0),
        ]
        .boxed()
    }

    fn matrix(rows: usize, cols: usize) -> BoxedStrategy<Vec<f64>> {
        let n = rows * cols;
        proptest::collection::vec(value(), n..n + 1).boxed()
    }

    fn to_f32(v: &[f64]) -> Vec<f32> {
        v.iter().map(|&x| x as f32).collect()
    }

    /// f64 dense matmul reference (no zero-skip, like `gemm_f32`).
    fn matmul_f64(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// f32↔f64 round trip: downcast the operands, run the f32 kernel,
        /// and check every element against the f64 product of the *same*
        /// downcast operands within the documented envelope
        /// `k · ε_f32 · max|a| · max|b|` (with a small absolute floor).
        #[test]
        fn gemm_f32_within_envelope_of_f64(dims in (0usize..9, 0usize..17, 0usize..12)) {
            let (m, k, n) = dims;
            let mut rng = TestRng::for_test(&format!("gemm-f32-{m}-{k}-{n}"));
            let a = matrix(m, k).generate(&mut rng);
            let b = matrix(k, n).generate(&mut rng);
            let (a32, b32) = (to_f32(&a), to_f32(&b));
            let a64: Vec<f64> = a32.iter().map(|&v| v as f64).collect();
            let b64: Vec<f64> = b32.iter().map(|&v| v as f64).collect();
            let mut out = vec![0.0f32; m * n];
            gemm_f32(&mut out, &a32, &b32, m, k, n);
            let exact = matmul_f64(&a64, &b64, m, k, n);
            let amax = a.iter().fold(0.0f64, |s, &v| s.max(v.abs()));
            let bmax = b.iter().fold(0.0f64, |s, &v| s.max(v.abs()));
            let tol = (k as f64) * (f32::EPSILON as f64) * amax * bmax + 1e-6;
            for (got, want) in out.iter().zip(&exact) {
                prop_assert!(
                    ((*got as f64) - want).abs() <= tol,
                    "got {got}, want {want}, tol {tol}"
                );
            }
        }

        #[test]
        fn matvec_f32_within_envelope_of_f64(dims in (0usize..11, 0usize..40)) {
            let (m, k) = dims;
            let mut rng = TestRng::for_test(&format!("matvec-f32-{m}-{k}"));
            let a32 = to_f32(&matrix(m, k).generate(&mut rng));
            let x32 = to_f32(&matrix(k, 1).generate(&mut rng));
            let mut y = vec![0.0f32; m];
            matvec_f32(&mut y, &a32, &x32, m, k);
            let a64: Vec<f64> = a32.iter().map(|&v| v as f64).collect();
            let x64: Vec<f64> = x32.iter().map(|&v| v as f64).collect();
            let amax = a64.iter().fold(0.0f64, |s, &v| s.max(v.abs()));
            let xmax = x64.iter().fold(0.0f64, |s, &v| s.max(v.abs()));
            let tol = (k as f64) * (f32::EPSILON as f64) * amax * xmax + 1e-6;
            for i in 0..m {
                let want: f64 = (0..k).map(|p| a64[i * k + p] * x64[p]).sum();
                prop_assert!(
                    ((y[i] as f64) - want).abs() <= tol,
                    "row {i}: got {}, want {want}, tol {tol}", y[i]
                );
            }
        }

        /// The int8 SIMD and scalar bodies are exact integer arithmetic, so
        /// they must agree bit-for-bit with a naive i32 loop.
        #[test]
        fn gemm_i8_matches_naive_i32(dims in (0usize..9, 0usize..40, 0usize..12)) {
            let (m, k, n) = dims;
            let mut rng = TestRng::for_test(&format!("gemm-i8-{m}-{k}-{n}"));
            let a: Vec<i8> = matrix(m, k).generate(&mut rng)
                .iter().map(|&v| (v * 50.0).clamp(-127.0, 127.0) as i8).collect();
            let b: Vec<i8> = matrix(k, n).generate(&mut rng)
                .iter().map(|&v| (v * 50.0).clamp(-127.0, 127.0) as i8).collect();
            let mut out = vec![0i32; m * n];
            gemm_i8(&mut out, &a, &b, m, k, n);
            let mut want = vec![0i32; m * n];
            for i in 0..m {
                for p in 0..k {
                    for j in 0..n {
                        want[i * n + j] += a[i * k + p] as i32 * b[p * n + j] as i32;
                    }
                }
            }
            prop_assert_eq!(out, want);
        }

        #[test]
        fn matvec_i8_matches_naive_i32(dims in (0usize..11, 0usize..40)) {
            let (m, k) = dims;
            let mut rng = TestRng::for_test(&format!("matvec-i8-{m}-{k}"));
            let a: Vec<i8> = matrix(m, k).generate(&mut rng)
                .iter().map(|&v| (v * 50.0).clamp(-127.0, 127.0) as i8).collect();
            let x: Vec<i8> = matrix(k, 1).generate(&mut rng)
                .iter().map(|&v| (v * 50.0).clamp(-127.0, 127.0) as i8).collect();
            let mut y = vec![0i32; m];
            matvec_i8(&mut y, &a, &x, m, k);
            let want: Vec<i32> = (0..m)
                .map(|i| (0..k).map(|p| a[i * k + p] as i32 * x[p] as i32).sum())
                .collect();
            prop_assert_eq!(y, want);
        }
    }

    #[test]
    fn empty_and_k0_shapes_are_safe() {
        // m = n = k = 0 and k = 0 with live rows: no panic, no writes.
        gemm_f32(&mut [], &[], &[], 0, 0, 0);
        gemm_f32(&mut [], &[], &[], 0, 3, 0);
        let mut out = vec![7.0f32; 4];
        gemm_f32(&mut out, &[], &[], 2, 0, 2);
        assert_eq!(out, vec![7.0; 4], "k=0 leaves the bias-initialized out");
        gemm_i8(&mut [], &[], &[], 0, 0, 0);
        let mut oi = vec![3i32; 4];
        gemm_i8(&mut oi, &[], &[], 2, 0, 2);
        assert_eq!(oi, vec![3; 4]);
        matvec_f32(&mut [], &[], &[], 0, 0);
        matvec_i8(&mut [], &[], &[], 0, 0);
        // k = 0 matvec rows are empty sums: exact zero.
        let mut y = vec![f32::NAN; 2];
        matvec_f32(&mut y, &[], &[], 2, 0);
        assert_eq!(y, vec![0.0, 0.0]);
        im2col_f32(&mut [], &[], 0, 1, 3);
    }

    #[test]
    fn single_element_matvec() {
        let mut y = vec![0.0f32; 1];
        matvec_f32(&mut y, &[3.0], &[-2.0], 1, 1);
        assert_eq!(y, vec![-6.0]);
        let mut yi = vec![0i32; 1];
        matvec_i8(&mut yi, &[-7], &[9], 1, 1);
        assert_eq!(yi, vec![-63]);
    }

    #[test]
    fn im2col_f32_zero_pads_edges() {
        let mut cols = vec![f32::NAN; 6];
        im2col_f32(&mut cols, &[10.0, 20.0], 2, 1, 3);
        assert_eq!(cols, vec![0.0, 10.0, 20.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn transpose_f32_round_trips() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let mut t = vec![0.0f32; 6];
        transpose_f32(&mut t, &a, 2, 3);
        assert_eq!(t, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let mut back = vec![0.0f32; 6];
        transpose_f32(&mut back, &t, 3, 2);
        assert_eq!(back, a);
    }

    #[test]
    fn quantize_round_trips_within_one_step() {
        let src = vec![0.5f32, -1.25, 0.0, 2.0, -2.0, 1.99];
        let scale = max_abs_f32(&src) / 127.0;
        let mut q = Vec::new();
        quantize_i8(&mut q, &src, scale);
        for (&v, &qi) in src.iter().zip(&q) {
            let back = qi as f32 * scale;
            assert!(
                (back - v).abs() <= scale * 0.5 + 1e-7,
                "v {v} -> q {qi} -> {back} (scale {scale})"
            );
        }
        // Degenerate all-zero tensor: scale 0 quantizes to zeros.
        quantize_i8(&mut q, &[0.0, 0.0], 0.0);
        assert_eq!(q, vec![0, 0]);
    }
}
