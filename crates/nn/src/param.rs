//! Trainable parameters and initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub w: Tensor,
    /// Accumulated gradient (same shape).
    pub g: Tensor,
}

impl Param {
    /// A parameter of zeros.
    pub fn zeros(shape: &[usize]) -> Param {
        Param {
            w: Tensor::zeros(shape),
            g: Tensor::zeros(shape),
        }
    }

    /// Xavier/Glorot-uniform initialization for a parameter with the given
    /// fan-in/fan-out.
    pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Param {
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let data = (0..shape.iter().product::<usize>())
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Param {
            w: Tensor::from_vec(shape, data),
            g: Tensor::zeros(shape),
        }
    }

    /// Uniform initialization in `[-bound, bound]`.
    pub fn uniform(shape: &[usize], bound: f64, rng: &mut StdRng) -> Param {
        let data = (0..shape.iter().product::<usize>())
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Param {
            w: Tensor::from_vec(shape, data),
            g: Tensor::zeros(shape),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.g.fill_zero();
    }

    /// Moves the accumulated gradient out, leaving zeros behind — the
    /// extraction half of the data-parallel gradient exchange.
    pub fn take_grad(&mut self) -> Tensor {
        std::mem::replace(&mut self.g, Tensor::zeros(self.w.shape()))
    }

    /// Adds `g` into the accumulated gradient — the merge half of the
    /// data-parallel gradient exchange.
    ///
    /// # Panics
    ///
    /// Panics when `g` has a different shape than the parameter.
    pub fn add_grad(&mut self, g: &Tensor) {
        assert_eq!(g.shape(), self.g.shape(), "gradient shape mismatch");
        self.g.axpy(1.0, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Param::xavier(&[10, 10], 10, 10, &mut rng);
        let bound = (6.0f64 / 20.0).sqrt();
        assert!(p.w.data().iter().all(|x| x.abs() <= bound));
        assert!(p.g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(&[2, 2]);
        p.g.data_mut()[0] = 3.0;
        p.zero_grad();
        assert_eq!(p.g.data(), &[0.0; 4]);
    }
}
