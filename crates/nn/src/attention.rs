//! The multilayer attention mechanism: token attention (Step IV) and the
//! CBAM channel + spatial attention used during model training (Step V).
//!
//! Both blocks run on the kernel layer: token attention's projection and
//! its weight/input gradients are single GEMMs (dense variants, since the
//! loops they replace never skipped zeros), and every temporary lives in a
//! caller-owned [`Workspace`] so a warmed-up pass allocates nothing. The
//! per-element accumulation orders match the original loops, keeping
//! results bit-identical.

use crate::kernels::{self, Workspace};
use crate::param::Param;
use crate::tensor::{sigmoid, softmax_into, Tensor};
use rand::rngs::StdRng;

/// Token attention (Step IV, equations 1-4).
///
/// For each embedded token `x_i`: `u_i = tanh(W·x_i + b)`, importance
/// `α_i = softmax_i(u_i · u_w)` against a learned context query `u_w`, and
/// the re-weighted embedding `x̂_i = α_i · x_i`.
#[derive(Debug, Clone)]
pub struct TokenAttention {
    /// Projection `(A × D)`.
    pub w: Param,
    /// Projection bias `(A)`.
    pub b: Param,
    /// Context query `(A)` — "a fixed attention query for context
    /// information" trained jointly.
    pub u_w: Param,
    cache: Option<TokenAttCache>,
}

#[derive(Debug, Clone)]
struct TokenAttCache {
    x: Tensor,
    u: Tensor, // (L × A) post-tanh
    scores: Vec<f64>,
    alpha: Vec<f64>,
}

impl TokenAttCache {
    fn empty() -> TokenAttCache {
        TokenAttCache {
            x: Tensor::zeros(&[0, 0]),
            u: Tensor::zeros(&[0, 0]),
            scores: Vec::new(),
            alpha: Vec::new(),
        }
    }
}

impl TokenAttention {
    /// Creates token attention over embedding dim `d` with attention dim `a`.
    pub fn new(d: usize, a: usize, rng: &mut StdRng) -> TokenAttention {
        TokenAttention {
            w: Param::xavier(&[a, d], d, a, rng),
            b: Param::zeros(&[a]),
            u_w: Param::uniform(&[a], 0.1, rng),
            cache: None,
        }
    }

    /// The attention weights of the last forward pass (for Fig. 6-style
    /// visualization).
    pub fn last_weights(&self) -> Option<&[f64]> {
        self.cache.as_ref().map(|c| c.alpha.as_slice())
    }

    /// Forward pass into a caller-owned output: `(L × D) → (L × D)`
    /// re-weighted embeddings.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, ws: &mut Workspace) {
        let l = x.rows();
        let d = x.cols();
        let a_dim = self.w.w.rows();
        let mut cache = self.cache.take().unwrap_or_else(TokenAttCache::empty);
        cache.x.copy_from(x);
        // U = X·Wᵀ as one GEMM (the old path was a strict per-row matvec,
        // hence the dense variant), then bias + tanh per element.
        let mut wt = ws.acquire(d * a_dim);
        kernels::transpose_into(&mut wt, self.w.w.data(), a_dim, d);
        cache.u.resize(&[l, a_dim]);
        cache.u.fill_zero();
        kernels::gemm_acc_dense(cache.u.data_mut(), x.data(), &wt, l, d, a_dim);
        ws.release(wt);
        cache.scores.clear();
        cache.scores.resize(l, 0.0);
        for t in 0..l {
            let urow = cache.u.row_mut(t);
            for (uo, bo) in urow.iter_mut().zip(self.b.w.data()) {
                *uo = (*uo + bo).tanh();
            }
            cache.scores[t] = urow.iter().zip(self.u_w.w.data()).map(|(a, b)| a * b).sum();
        }
        softmax_into(&cache.scores, &mut cache.alpha);
        out.resize(x.shape());
        for t in 0..l {
            let xr = x.row(t);
            for (o, &v) in out.row_mut(t).iter_mut().zip(xr) {
                *o = cache.alpha[t] * v;
            }
        }
        self.cache = Some(cache);
    }

    /// Forward pass: `(L × D) → (L × D)` re-weighted embeddings.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[0, 0]);
        self.forward_into(x, &mut out, &mut ws);
        out
    }

    /// Backward pass into a caller-owned `dx`.
    pub fn backward_into(&mut self, dy: &Tensor, dx: &mut Tensor, ws: &mut Workspace) {
        let cache = self.cache.take().expect("forward before backward");
        let l = cache.x.rows();
        let d = cache.x.cols();
        let a_dim = self.w.w.rows();

        // dα_t = Σ_d dy[t,d]·x[t,d];  dx (direct) = dy·α.
        let mut dalpha = ws.acquire(l);
        dx.resize(&[l, d]);
        for t in 0..l {
            let mut s = 0.0;
            let (dyr, xr) = (dy.row(t), cache.x.row(t));
            let dxr = dx.row_mut(t);
            for j in 0..d {
                s += dyr[j] * xr[j];
                dxr[j] = dyr[j] * cache.alpha[t];
            }
            dalpha[t] = s;
        }
        // Softmax backward: ds_t = α_t (dα_t − Σ_k α_k dα_k).
        let dot: f64 = cache.alpha.iter().zip(&*dalpha).map(|(a, g)| a * g).sum();

        // score_t = u_t · u_w with u_t = tanh(W x_t + b): collect the
        // pre-activation gradients dpre into an (L × A) matrix so the W
        // and input gradients become two GEMMs below.
        let mut dp = ws.acquire(l * a_dim);
        for t in 0..l {
            let ds = cache.alpha[t] * (dalpha[t] - dot);
            let ut = cache.u.row(t);
            // du_w += ds_t · u_t
            for (g, &u) in self.u_w.g.data_mut().iter_mut().zip(ut) {
                *g += ds * u;
            }
            // du_t = ds_t · u_w, through tanh: dpre = du·(1−u²)
            let dpr = &mut dp[t * a_dim..(t + 1) * a_dim];
            for ai in 0..a_dim {
                let dpre = ds * self.u_w.w.data()[ai] * (1.0 - ut[ai] * ut[ai]);
                self.b.g.data_mut()[ai] += dpre;
                dpr[ai] = dpre;
            }
        }
        // dW += dpᵀ·X (k-dim = t ascending) and dx += dp·W (k-dim = ai
        // ascending) — the same per-element orders as the original nested
        // loops, which never skipped, hence the dense variants.
        let mut dpt = ws.acquire(a_dim * l);
        kernels::transpose_into(&mut dpt, &dp, l, a_dim);
        kernels::gemm_acc_dense(self.w.g.data_mut(), &dpt, cache.x.data(), a_dim, l, d);
        kernels::gemm_acc_dense(dx.data_mut(), &dp, self.w.w.data(), l, a_dim, d);
        ws.release(dpt);
        ws.release(dp);
        ws.release(dalpha);
        self.cache = Some(cache);
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut dx = Tensor::zeros(&[0, 0]);
        self.backward_into(dy, &mut dx, &mut ws);
        dx
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b, &mut self.u_w]
    }
}

/// How the CBAM channel and spatial gates combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbamOrder {
    /// `F'' = Ms(Mc(F)⊗F) ⊗ (Mc(F)⊗F)` — the paper's choice ("the
    /// sequential alignment of the two modules gives better results").
    Sequential,
    /// Both gates computed from `F` and applied jointly:
    /// `F'' = F ⊗ Mc(F) ⊗ Ms(F)` — the ablation arrangement.
    Parallel,
}

/// CBAM (channel then spatial attention) adapted to `(L × C)` sequence maps
/// — equations 5-8 of the paper. The modules run sequentially by default,
/// which the paper observes works better than a parallel arrangement;
/// [`Cbam::with_order`] builds the parallel ablation.
#[derive(Debug, Clone)]
pub struct Cbam {
    order: CbamOrder,
    /// Shared MLP layer 0 `(C/r × C)`.
    pub w0: Param,
    /// Shared MLP bias 0 `(C/r)`.
    pub b0: Param,
    /// Shared MLP layer 1 `(C × C/r)`.
    pub w1: Param,
    /// Shared MLP bias 1 `(C)`.
    pub b1: Param,
    /// Spatial 7-wide conv kernel `(7 × 2)` + bias.
    pub wc: Param,
    /// Spatial conv bias `(1)`.
    pub bc: Param,
    k: usize,
    cache: Option<CbamCache>,
}

#[derive(Debug, Clone)]
struct CbamCache {
    f: Tensor,        // input
    avg: Vec<f64>,    // (C)
    mx: Vec<f64>,     // (C)
    amx: Vec<usize>,  // argmax over L per channel
    ha_pre: Vec<f64>, // (C/r) pre-relu (avg path)
    hm_pre: Vec<f64>, // (C/r) pre-relu (max path)
    oa: Vec<f64>,     // (C) MLP output, avg path
    om: Vec<f64>,     // (C) MLP output, max path
    mc: Vec<f64>,     // (C) channel gate
    f1: Tensor,       // after channel attention
    sa: Vec<f64>,     // (L) spatial mean
    sm: Vec<f64>,     // (L) spatial max
    sam: Vec<usize>,  // argmax over C per position
    z: Vec<f64>,      // (L) conv pre-sigmoid
    ms: Vec<f64>,     // (L) spatial gate
}

impl CbamCache {
    fn empty() -> CbamCache {
        CbamCache {
            f: Tensor::zeros(&[0, 0]),
            avg: Vec::new(),
            mx: Vec::new(),
            amx: Vec::new(),
            ha_pre: Vec::new(),
            hm_pre: Vec::new(),
            oa: Vec::new(),
            om: Vec::new(),
            mc: Vec::new(),
            f1: Tensor::zeros(&[0, 0]),
            sa: Vec::new(),
            sm: Vec::new(),
            sam: Vec::new(),
            z: Vec::new(),
            ms: Vec::new(),
        }
    }
}

impl Cbam {
    /// Creates a CBAM block for `c` channels with reduction ratio `r` and a
    /// spatial kernel of width `k` (paper: 7), in sequential order.
    pub fn new(c: usize, r: usize, k: usize, rng: &mut StdRng) -> Cbam {
        Cbam::with_order(c, r, k, CbamOrder::Sequential, rng)
    }

    /// Creates a CBAM block with an explicit gate arrangement (the paper's
    /// sequential-vs-parallel ablation).
    pub fn with_order(c: usize, r: usize, k: usize, order: CbamOrder, rng: &mut StdRng) -> Cbam {
        let h = (c / r).max(1);
        assert!(k % 2 == 1);
        Cbam {
            order,
            w0: Param::xavier(&[h, c], c, h, rng),
            b0: Param::zeros(&[h]),
            w1: Param::xavier(&[c, h], h, c, rng),
            b1: Param::zeros(&[c]),
            wc: Param::xavier(&[k, 2], 2 * k, 1, rng),
            bc: Param::zeros(&[1]),
            k,
            cache: None,
        }
    }

    /// The configured gate arrangement.
    pub fn order(&self) -> CbamOrder {
        self.order
    }

    /// The spatial gate of the last forward pass (per-position weights,
    /// useful for attention visualization).
    pub fn last_spatial_gate(&self) -> Option<&[f64]> {
        self.cache.as_ref().map(|c| c.ms.as_slice())
    }

    /// The channel gate of the last forward pass (per-channel weights,
    /// the other half of the Fig. 6 attention picture).
    pub fn last_channel_gate(&self) -> Option<&[f64]> {
        self.cache.as_ref().map(|c| c.mc.as_slice())
    }

    /// The shared MLP: `o = W1·relu(W0·s + b0) + b1`, writing pre-relu and
    /// output into caller buffers.
    fn mlp_into(&self, s: &[f64], pre: &mut Vec<f64>, o: &mut Vec<f64>, ws: &mut Workspace) {
        let h = self.w0.w.rows();
        let c = self.w1.w.rows();
        pre.clear();
        pre.resize(h, 0.0);
        kernels::matvec_into(pre, self.w0.w.data(), s, h, self.w0.w.cols());
        for (p, b) in pre.iter_mut().zip(self.b0.w.data()) {
            *p += b;
        }
        let mut h_act = ws.acquire(h);
        for (ha, p) in h_act.iter_mut().zip(pre.iter()) {
            *ha = p.max(0.0);
        }
        o.clear();
        o.resize(c, 0.0);
        kernels::matvec_into(o, self.w1.w.data(), &h_act, c, h);
        for (p, b) in o.iter_mut().zip(self.b1.w.data()) {
            *p += b;
        }
        ws.release(h_act);
    }

    /// Forward pass into a caller-owned output:
    /// `F → F'' = Ms(F') ⊗ F'`, `F' = Mc(F) ⊗ F`.
    pub fn forward_into(&mut self, f: &Tensor, out: &mut Tensor, ws: &mut Workspace) {
        let (l, c) = (f.rows(), f.cols());
        let mut cache = self.cache.take().unwrap_or_else(CbamCache::empty);
        cache.f.copy_from(f);
        // ---- channel attention ----
        cache.avg.clear();
        cache.avg.resize(c, 0.0);
        cache.mx.clear();
        cache.mx.resize(c, f64::NEG_INFINITY);
        cache.amx.clear();
        cache.amx.resize(c, 0);
        for t in 0..l {
            for ch in 0..c {
                let v = f.at(t, ch);
                cache.avg[ch] += v;
                if v > cache.mx[ch] {
                    cache.mx[ch] = v;
                    cache.amx[ch] = t;
                }
            }
        }
        for a in cache.avg.iter_mut() {
            *a /= l as f64;
        }
        let CbamCache {
            avg,
            mx,
            ha_pre,
            hm_pre,
            oa,
            om,
            ..
        } = &mut cache;
        self.mlp_into(avg, ha_pre, oa, ws);
        self.mlp_into(mx, hm_pre, om, ws);
        cache.mc.clear();
        cache
            .mc
            .extend(cache.oa.iter().zip(&cache.om).map(|(a, m)| sigmoid(a + m)));
        cache.f1.resize(&[l, c]);
        for t in 0..l {
            for ch in 0..c {
                cache.f1.set(t, ch, f.at(t, ch) * cache.mc[ch]);
            }
        }
        // ---- spatial attention ----
        // Sequential order pools the channel-gated map F'; the parallel
        // ablation pools the raw input F.
        let spatial_src = if self.order == CbamOrder::Sequential {
            &cache.f1
        } else {
            f
        };
        cache.sa.clear();
        cache.sa.resize(l, 0.0);
        cache.sm.clear();
        cache.sm.resize(l, f64::NEG_INFINITY);
        cache.sam.clear();
        cache.sam.resize(l, 0);
        for t in 0..l {
            for ch in 0..c {
                let v = spatial_src.at(t, ch);
                cache.sa[t] += v;
                if v > cache.sm[t] {
                    cache.sm[t] = v;
                    cache.sam[t] = ch;
                }
            }
            cache.sa[t] /= c as f64;
        }
        let pad = self.k / 2;
        cache.z.clear();
        cache.z.resize(l, 0.0);
        for t in 0..l {
            let mut acc = self.bc.w.data()[0];
            for j in 0..self.k {
                let src = t as isize + j as isize - pad as isize;
                if src < 0 || src >= l as isize {
                    continue;
                }
                let s = src as usize;
                acc += self.wc.w.data()[j * 2] * cache.sa[s]
                    + self.wc.w.data()[j * 2 + 1] * cache.sm[s];
            }
            cache.z[t] = acc;
        }
        cache.ms.clear();
        cache.ms.extend(cache.z.iter().map(|&v| sigmoid(v)));
        out.resize(&[l, c]);
        for t in 0..l {
            for ch in 0..c {
                out.set(t, ch, cache.f1.at(t, ch) * cache.ms[t]);
            }
        }
        self.cache = Some(cache);
    }

    /// Forward pass: `F → F'' = Ms(F') ⊗ F'`, `F' = Mc(F) ⊗ F`.
    pub fn forward(&mut self, f: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[0, 0]);
        self.forward_into(f, &mut out, &mut ws);
        out
    }

    /// Backward pass into a caller-owned `dF`. The cache is borrowed in
    /// place (the old implementation cloned it wholesale every call).
    pub fn backward_into(&mut self, dy: &Tensor, df: &mut Tensor, ws: &mut Workspace) {
        let cache = self.cache.take().expect("forward before backward");
        let (l, c) = (cache.f.rows(), cache.f.cols());
        let pad = self.k / 2;

        // ---- spatial attention backward ----
        let mut dms = ws.acquire(l);
        let mut df1 = ws.acquire(l * c);
        for t in 0..l {
            for ch in 0..c {
                dms[t] += dy.at(t, ch) * cache.f1.at(t, ch);
                df1[t * c + ch] = dy.at(t, ch) * cache.ms[t];
            }
        }
        let mut dz = ws.acquire(l);
        for (d, (&g, &m)) in dz.iter_mut().zip(dms.iter().zip(&cache.ms)) {
            *d = g * m * (1.0 - m);
        }
        let mut dsa = ws.acquire(l);
        let mut dsm = ws.acquire(l);
        for t in 0..l {
            if dz[t] == 0.0 {
                continue;
            }
            self.bc.g.data_mut()[0] += dz[t];
            for j in 0..self.k {
                let src = t as isize + j as isize - pad as isize;
                if src < 0 || src >= l as isize {
                    continue;
                }
                let s = src as usize;
                self.wc.g.data_mut()[j * 2] += dz[t] * cache.sa[s];
                self.wc.g.data_mut()[j * 2 + 1] += dz[t] * cache.sm[s];
                dsa[s] += dz[t] * self.wc.w.data()[j * 2];
                dsm[s] += dz[t] * self.wc.w.data()[j * 2 + 1];
            }
        }
        // The spatial pooling gradient flows into F' (sequential) or
        // straight into F (parallel).
        let mut df_spatial = ws.acquire(l * c);
        {
            let target = if self.order == CbamOrder::Sequential {
                &mut df1
            } else {
                &mut df_spatial
            };
            for t in 0..l {
                for ch in 0..c {
                    target[t * c + ch] += dsa[t] / c as f64;
                }
                target[t * c + cache.sam[t]] += dsm[t];
            }
        }

        // ---- channel attention backward ----
        let mut dmc = ws.acquire(c);
        df.resize(&[l, c]);
        for t in 0..l {
            for ch in 0..c {
                dmc[ch] += df1[t * c + ch] * cache.f.at(t, ch);
                df.set(t, ch, df1[t * c + ch] * cache.mc[ch]);
            }
        }
        let mut dzc = ws.acquire(c);
        for (d, (&g, &m)) in dzc.iter_mut().zip(dmc.iter().zip(&cache.mc)) {
            *d = g * m * (1.0 - m);
        }
        // Two shared-MLP paths (avg & max).
        let h = self.w0.w.rows();
        let mut davg = ws.acquire(c);
        let mut dmx = ws.acquire(c);
        for (pre, pooled, dpool) in [
            (&cache.ha_pre, &cache.avg, &mut davg),
            (&cache.hm_pre, &cache.mx, &mut dmx),
        ] {
            // dO = dzc (shape C) through W1.
            let mut h_act = ws.acquire(h);
            for (ha, p) in h_act.iter_mut().zip(pre.iter()) {
                *ha = p.max(0.0);
            }
            let mut dh = ws.acquire(h);
            for co in 0..c {
                self.b1.g.data_mut()[co] += dzc[co];
                for hi in 0..h {
                    self.w1.g.data_mut()[co * h + hi] += dzc[co] * h_act[hi];
                    dh[hi] += dzc[co] * self.w1.w.data()[co * h + hi];
                }
            }
            for hi in 0..h {
                if pre[hi] <= 0.0 {
                    continue;
                }
                self.b0.g.data_mut()[hi] += dh[hi];
                for ci in 0..c {
                    self.w0.g.data_mut()[hi * c + ci] += dh[hi] * pooled[ci];
                    dpool[ci] += dh[hi] * self.w0.w.data()[hi * c + ci];
                }
            }
            ws.release(dh);
            ws.release(h_act);
        }
        for ch in 0..c {
            for t in 0..l {
                df.add_at(t, ch, davg[ch] / l as f64);
            }
            df.add_at(cache.amx[ch], ch, dmx[ch]);
        }
        // df += df_spatial (the old code's axpy(1.0, ..)).
        for (a, &b) in df.data_mut().iter_mut().zip(df_spatial.iter()) {
            *a += 1.0 * b;
        }
        ws.release(dmx);
        ws.release(davg);
        ws.release(dzc);
        ws.release(dmc);
        ws.release(df_spatial);
        ws.release(dsm);
        ws.release(dsa);
        ws.release(dz);
        ws.release(df1);
        ws.release(dms);
        self.cache = Some(cache);
    }

    /// Backward pass; returns `dF`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let mut df = Tensor::zeros(&[0, 0]);
        self.backward_into(dy, &mut df, &mut ws);
        df
    }

    /// The block's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w0,
            &mut self.b0,
            &mut self.w1,
            &mut self.b1,
            &mut self.wc,
            &mut self.bc,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;
    use rand::SeedableRng;

    fn sample_input(l: usize, c: usize, seed: u64) -> Tensor {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            &[l, c],
            (0..l * c).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn token_attention_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut att = TokenAttention::new(4, 4, &mut rng);
        let x = sample_input(6, 4, 11);
        let y = att.forward(&x);
        assert_eq!(y.shape(), x.shape());
        let a = att.last_weights().unwrap();
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn token_attention_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut att = TokenAttention::new(3, 3, &mut rng);
        let x = sample_input(4, 3, 13);
        check_param_grads(
            &mut att,
            |l| l.params_mut(),
            |l| l.forward(&x).sum(),
            |l| {
                let y = l.forward(&x);
                l.backward(&Tensor::full(y.shape(), 1.0));
            },
        );
    }

    #[test]
    fn token_attention_input_gradient() {
        let mut rng = StdRng::seed_from_u64(14);
        let att = TokenAttention::new(3, 3, &mut rng);
        let x = sample_input(4, 3, 15);
        let mut a = att.clone();
        a.forward(&x);
        let dx = a.backward(&Tensor::full(&[4, 3], 1.0));
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp = att.clone().forward(&xp).sum();
            let fm = att.clone().forward(&xm).sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn cbam_preserves_shape_and_gates_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut cbam = Cbam::new(8, 4, 7, &mut rng);
        let x = sample_input(10, 8, 21);
        let y = cbam.forward(&x);
        assert_eq!(y.shape(), x.shape());
        let gate = cbam.last_spatial_gate().unwrap();
        assert!(gate.iter().all(|&g| (0.0..=1.0).contains(&g)));
    }

    #[test]
    fn cbam_param_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut cbam = Cbam::new(4, 2, 3, &mut rng);
        let x = sample_input(5, 4, 23);
        check_param_grads(
            &mut cbam,
            |l| l.params_mut(),
            |l| l.forward(&x).sum(),
            |l| {
                let y = l.forward(&x);
                l.backward(&Tensor::full(y.shape(), 1.0));
            },
        );
    }

    #[test]
    fn cbam_parallel_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut cbam = Cbam::with_order(4, 2, 3, CbamOrder::Parallel, &mut rng);
        let x = sample_input(5, 4, 27);
        check_param_grads(
            &mut cbam,
            |l| l.params_mut(),
            |l| l.forward(&x).sum(),
            |l| {
                let y = l.forward(&x);
                l.backward(&Tensor::full(y.shape(), 1.0));
            },
        );
        // Input gradient too.
        let fresh = Cbam::with_order(4, 2, 3, CbamOrder::Parallel, &mut rng);
        let mut c = fresh.clone();
        c.forward(&x);
        let dx = c.backward(&Tensor::full(&[5, 4], 1.0));
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp = fresh.clone().forward(&xp).sum();
            let fm = fresh.clone().forward(&xm).sum();
            let num = (fp - fm) / 2e-5;
            assert!((num - dx.data()[i]).abs() < 1e-5, "dx[{i}]");
        }
    }

    #[test]
    fn sequential_and_parallel_orders_differ() {
        let mut rng = StdRng::seed_from_u64(28);
        let mut seq = Cbam::new(6, 2, 3, &mut rng);
        let mut par = seq.clone();
        par.order = CbamOrder::Parallel;
        let x = sample_input(7, 6, 29);
        let a = seq.forward(&x);
        let b = par.forward(&x);
        assert_ne!(a, b, "the two arrangements must gate differently");
        assert_eq!(seq.order(), CbamOrder::Sequential);
        assert_eq!(par.order(), CbamOrder::Parallel);
    }

    #[test]
    fn cbam_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(24);
        let cbam = Cbam::new(4, 2, 3, &mut rng);
        let x = sample_input(5, 4, 25);
        let mut c = cbam.clone();
        c.forward(&x);
        let dx = c.backward(&Tensor::full(&[5, 4], 1.0));
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-5;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-5;
            let fp = cbam.clone().forward(&xp).sum();
            let fm = cbam.clone().forward(&xm).sum();
            let num = (fp - fm) / 2e-5;
            assert!(
                (num - dx.data()[i]).abs() < 1e-5,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }
}
