//! Token vocabulary with frequency-based construction.
//!
//! Index 0 is reserved for `<pad>`, index 1 for `<unk>`; real tokens start
//! at 2. Ordering is by descending frequency (ties broken lexicographically)
//! so vocabularies are deterministic across runs.

use std::collections::HashMap;

/// Reserved id of the padding token.
pub const PAD: usize = 0;
/// Reserved id of the unknown token.
pub const UNK: usize = 1;

/// A frozen token-to-id mapping.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    ids: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Builds a vocabulary from token sequences, keeping tokens that occur
    /// at least `min_count` times.
    pub fn build<'a>(corpus: impl IntoIterator<Item = &'a [String]>, min_count: u64) -> Vocab {
        let _t = sevuldet_trace::span!("embed.vocab");
        let mut freq: HashMap<String, u64> = HashMap::new();
        for seq in corpus {
            for t in seq {
                *freq.entry(t.clone()).or_default() += 1;
            }
        }
        let mut entries: Vec<(String, u64)> =
            freq.into_iter().filter(|(_, c)| *c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut v = Vocab {
            ids: HashMap::new(),
            tokens: vec!["<pad>".into(), "<unk>".into()],
            counts: vec![0, 0],
        };
        for (tok, c) in entries {
            v.ids.insert(tok.clone(), v.tokens.len());
            v.tokens.push(tok);
            v.counts.push(c);
        }
        v
    }

    /// Vocabulary size including the reserved tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary holds only the reserved tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 2
    }

    /// Id of `token`, or [`UNK`].
    pub fn id(&self, token: &str) -> usize {
        self.ids.get(token).copied().unwrap_or(UNK)
    }

    /// The token with the given id, if any.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.tokens.get(id).map(String::as_str)
    }

    /// Occurrence count of the token with the given id.
    pub fn count(&self, id: usize) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// Encodes a token sequence to ids.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Iterates the non-reserved entries in id order as `(token, count)`.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.tokens
            .iter()
            .zip(&self.counts)
            .skip(2)
            .map(|(t, &c)| (t.as_str(), c))
    }

    /// Rebuilds a vocabulary from entries previously produced by
    /// [`Vocab::entries`], preserving id assignment (used by model
    /// persistence).
    pub fn from_entries(entries: impl IntoIterator<Item = (String, u64)>) -> Vocab {
        let mut v = Vocab {
            ids: HashMap::new(),
            tokens: vec!["<pad>".into(), "<unk>".into()],
            counts: vec![0, 0],
        };
        for (tok, c) in entries {
            v.ids.insert(tok.clone(), v.tokens.len());
            v.tokens.push(tok);
            v.counts.push(c);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn builds_by_frequency() {
        let a = toks("if n if ( (");
        let b = toks("if strncpy (");
        let v = Vocab::build([a.as_slice(), b.as_slice()], 1);
        // "if" and "(" occur 3 times each; ties lexicographic → "(" first.
        assert_eq!(v.id("("), 2);
        assert_eq!(v.id("if"), 3);
        assert_eq!(v.token(0), Some("<pad>"));
        assert_eq!(v.id("missing"), UNK);
        assert_eq!(v.count(v.id("if")), 3);
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let a = toks("x x y");
        let v = Vocab::build([a.as_slice()], 2);
        assert_eq!(v.id("x"), 2);
        assert_eq!(v.id("y"), UNK);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn encode_roundtrip() {
        let a = toks("n = n + 1");
        let v = Vocab::build([a.as_slice()], 1);
        let ids = v.encode(&a);
        let back: Vec<&str> = ids.iter().map(|&i| v.token(i).unwrap()).collect();
        assert_eq!(back, vec!["n", "=", "n", "+", "1"]);
    }
}
