//! word2vec: skip-gram with negative sampling (Step IV's pre-trained token
//! embedding), implemented from scratch.
//!
//! The paper uses gensim's word2vec; this is the same model family: for each
//! (center, context) pair within a window, maximize `σ(v_c · u_o)` while
//! minimizing `σ(v_c · u_neg)` for `k` sampled negatives drawn from the
//! unigram distribution raised to the 3/4 power.

use crate::vocab::{Vocab, PAD, UNK};
use rand::rngs::StdRng;
use rand::Rng;

/// Training hyper-parameters for skip-gram.
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Embedding dimension (paper: 30 for SEVulDet/SySeVR).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs over the corpus.
    pub epochs: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 30,
            window: 4,
            negatives: 5,
            lr: 0.025,
            epochs: 3,
        }
    }
}

/// A trained skip-gram model: input (center) and output (context) vectors.
#[derive(Debug, Clone)]
pub struct SkipGram {
    /// Center-word vectors, `vocab × dim`, row-major.
    pub input: Vec<f64>,
    /// Context-word vectors, `vocab × dim`, row-major.
    pub output: Vec<f64>,
    /// Embedding dimension.
    pub dim: usize,
    vocab_len: usize,
}

impl SkipGram {
    /// Trains skip-gram over encoded sequences.
    pub fn train(
        vocab: &Vocab,
        corpus: &[Vec<usize>],
        config: &SkipGramConfig,
        rng: &mut StdRng,
    ) -> SkipGram {
        let _t = sevuldet_trace::span!("embed.w2v");
        let v = vocab.len();
        let d = config.dim;
        let mut model = SkipGram {
            input: (0..v * d)
                .map(|_| rng.gen_range(-0.5..0.5) / d as f64)
                .collect(),
            output: vec![0.0; v * d],
            dim: d,
            vocab_len: v,
        };
        let sampler = NegativeSampler::new(vocab);
        for _ in 0..config.epochs {
            for seq in corpus {
                for (i, &center) in seq.iter().enumerate() {
                    if center == PAD {
                        continue;
                    }
                    let w = rng.gen_range(1..=config.window);
                    let lo = i.saturating_sub(w);
                    let hi = (i + w + 1).min(seq.len());
                    #[allow(clippy::needless_range_loop)] // j is a position, compared with i
                    for j in lo..hi {
                        if j == i || seq[j] == PAD {
                            continue;
                        }
                        model.train_pair(center, seq[j], true, config.lr);
                        for _ in 0..config.negatives {
                            let neg = sampler.sample(rng);
                            if neg != seq[j] {
                                model.train_pair(center, neg, false, config.lr);
                            }
                        }
                    }
                }
            }
        }
        model
    }

    fn train_pair(&mut self, center: usize, context: usize, positive: bool, lr: f64) {
        let d = self.dim;
        let ci = center * d;
        let oi = context * d;
        let mut dot = 0.0;
        for k in 0..d {
            dot += self.input[ci + k] * self.output[oi + k];
        }
        let pred = sigmoid(dot);
        let label = if positive { 1.0 } else { 0.0 };
        let g = (pred - label) * lr;
        for k in 0..d {
            let vi = self.input[ci + k];
            let uo = self.output[oi + k];
            self.input[ci + k] -= g * uo;
            self.output[oi + k] -= g * vi;
        }
    }

    /// The center vector of a token id.
    pub fn vector(&self, id: usize) -> &[f64] {
        let id = id.min(self.vocab_len - 1);
        &self.input[id * self.dim..(id + 1) * self.dim]
    }

    /// Cosine similarity between two token ids' vectors.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Exports the `(vocab × dim)` embedding table (center vectors). Row 0
    /// (`<pad>`) is zeroed so padding carries no signal.
    pub fn table(&self) -> sevuldet_nn_table::Table {
        let mut data = self.input.clone();
        for v in data.iter_mut().take(self.dim) {
            *v = 0.0;
        }
        sevuldet_nn_table::Table {
            rows: self.vocab_len,
            cols: self.dim,
            data,
        }
    }
}

/// A tiny decoupling shim so this crate does not depend on `sevuldet-nn`:
/// the core crate converts [`sevuldet_nn_table::Table`] into an
/// `sevuldet_nn::Tensor`.
pub mod sevuldet_nn_table {
    /// A plain row-major matrix.
    #[derive(Debug, Clone)]
    pub struct Table {
        /// Row count (vocabulary size).
        pub rows: usize,
        /// Column count (embedding dimension).
        pub cols: usize,
        /// Row-major data.
        pub data: Vec<f64>,
    }
}

/// Unigram^(3/4) negative sampler.
struct NegativeSampler {
    cdf: Vec<f64>,
}

impl NegativeSampler {
    fn new(vocab: &Vocab) -> NegativeSampler {
        let mut weights: Vec<f64> = (0..vocab.len())
            .map(|id| {
                if id == PAD || id == UNK {
                    0.0
                } else {
                    (vocab.count(id) as f64).powf(0.75)
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            let mut acc = 0.0;
            for w in weights.iter_mut() {
                acc += *w / total;
                *w = acc;
            }
        }
        NegativeSampler { cdf: weights }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let r: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&r).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy corpus where `alpha` and `beta` appear in interchangeable
    /// contexts and `gamma` appears elsewhere: after training, alpha/beta
    /// should be closer than alpha/gamma.
    #[test]
    fn learns_distributional_similarity() {
        let mut sents: Vec<Vec<String>> = Vec::new();
        for _ in 0..60 {
            sents.push(
                "open alpha close"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
            sents.push(
                "open beta close"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
            sents.push(
                "left gamma right"
                    .split_whitespace()
                    .map(String::from)
                    .collect(),
            );
        }
        let refs: Vec<&[String]> = sents.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs.iter().copied(), 1);
        let corpus: Vec<Vec<usize>> = sents.iter().map(|s| vocab.encode(s)).collect();
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = SkipGramConfig {
            dim: 16,
            window: 2,
            negatives: 4,
            lr: 0.05,
            epochs: 12,
        };
        let model = SkipGram::train(&vocab, &corpus, &cfg, &mut rng);
        let a = vocab.id("alpha");
        let b = vocab.id("beta");
        let g = vocab.id("gamma");
        let sim_ab = model.cosine(a, b);
        let sim_ag = model.cosine(a, g);
        assert!(
            sim_ab > sim_ag,
            "alpha~beta ({sim_ab:.3}) should beat alpha~gamma ({sim_ag:.3})"
        );
    }

    #[test]
    fn table_zeroes_pad_row() {
        let sents = [vec!["a".to_string(), "b".to_string()]];
        let refs: Vec<&[String]> = sents.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs.iter().copied(), 1);
        let corpus: Vec<Vec<usize>> = sents.iter().map(|s| vocab.encode(s)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let model = SkipGram::train(&vocab, &corpus, &SkipGramConfig::default(), &mut rng);
        let t = model.table();
        assert_eq!(t.rows, vocab.len());
        assert!(t.data[..t.cols].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sampler_never_returns_pad_or_unk() {
        let sents = [vec!["x".to_string(), "y".to_string(), "z".to_string()]];
        let refs: Vec<&[String]> = sents.iter().map(Vec::as_slice).collect();
        let vocab = Vocab::build(refs.iter().copied(), 1);
        let s = NegativeSampler::new(&vocab);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let id = s.sample(&mut rng);
            assert!(id >= 2, "sampled reserved id {id}");
        }
    }
}
