//! # sevuldet-embedding
//!
//! Token vocabulary construction and a from-scratch **word2vec** (skip-gram
//! with negative sampling), replacing the gensim model the paper uses for
//! Step IV's token embedding.
//!
//! ## Example
//!
//! ```
//! use sevuldet_embedding::{Vocab, SkipGram, SkipGramConfig};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let sents: Vec<Vec<String>> =
//!     vec!["if ( n < 16 ) {".split_whitespace().map(String::from).collect()];
//! let refs: Vec<&[String]> = sents.iter().map(Vec::as_slice).collect();
//! let vocab = Vocab::build(refs.iter().copied(), 1);
//! let corpus: Vec<Vec<usize>> = sents.iter().map(|s| vocab.encode(s)).collect();
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = SkipGram::train(&vocab, &corpus, &SkipGramConfig::default(), &mut rng);
//! assert_eq!(model.vector(vocab.id("if")).len(), 30);
//! ```

pub mod skipgram;
pub mod vocab;

pub use skipgram::{SkipGram, SkipGramConfig};
pub use vocab::{Vocab, PAD, UNK};
