//! Incremental-engine invariants, all downstream of one contract: for any
//! source and any cache state — cold, warm, damaged, partially reusable —
//! [`QueryEngine::prepare`] returns exactly what [`sevuldet::prepare_source`]
//! returns. The cache may only change how fast the answer arrives.
//!
//! Counter assertions use before/after deltas with `>=`: the counters are
//! process-global and the test binary runs its tests concurrently.

use sevuldet::{prepare_source, PreparedSource};
use sevuldet_query::{counters, QueryConfig, QueryEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Three functions; `sink`'s gadget slices inter-procedurally into
/// `producer` (its caller), while `unrelated` stays out of that slice.
const BASE: &str = "void sink(char *dst, char *src) {\n    strcpy(dst, src);\n}\n\nvoid producer(char *buf) {\n    char data[64];\n    data[0] = 1;\n    sink(buf, data);\n}\n\nint unrelated(int x) {\n    int y = x + 1;\n    return y * 2;\n}\n";

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "svd-incr-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn disk_engine(dir: &std::path::Path) -> QueryEngine {
    QueryEngine::open(&QueryConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..QueryConfig::default()
    })
    .expect("open engine")
}

/// The reference the engine must match byte-for-byte.
fn fresh(source: &str) -> PreparedSource {
    prepare_source(source, 1).expect("reference prepare")
}

#[test]
fn engine_matches_prepare_source_for_every_tier_and_jobs() {
    let dir = tmpdir("tiers");
    let engine = disk_engine(&dir);
    let sources = [
        BASE.to_string(),
        "int main() { return 0; }".to_string(),
        BASE.replace("y * 2", "y * 3"),
    ];
    for jobs in [1usize, 2] {
        for src in &sources {
            let want = fresh(src);
            // Cold (miss), warm (memory hit), and via a second engine on
            // the same directory (disk hit) — all three identical.
            assert_eq!(engine.prepare(src, jobs).unwrap(), want, "cold/warm");
            assert_eq!(engine.prepare(src, jobs).unwrap(), want, "memo");
            let other = disk_engine(&dir);
            assert_eq!(other.prepare(src, jobs).unwrap(), want, "disk");
        }
    }
    // Parse failures pass through unchanged (and are never cached).
    assert!(engine.prepare("int (", 1).is_err());
    assert!(engine.prepare("int (", 1).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_and_disk_hits_are_counted() {
    let dir = tmpdir("counters");
    let engine = disk_engine(&dir);
    let src = BASE.replace("unrelated", "renamed_for_counter_test");

    let before = counters();
    engine.prepare(&src, 1).unwrap();
    let after_cold = counters();
    assert!(after_cold.misses > before.misses, "cold scan is a miss");
    assert!(after_cold.size_bytes > 0, "save grew the store gauge");

    engine.prepare(&src, 1).unwrap();
    assert!(
        counters().hits_mem > after_cold.hits_mem,
        "second scan hits the memo"
    );

    let second = disk_engine(&dir);
    let before_disk = counters();
    second.prepare(&src, 1).unwrap();
    assert!(
        counters().hits_disk > before_disk.hits_disk,
        "fresh engine on the same dir hits the disk store"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Every flavor of on-disk damage degrades to a silent recompute with
/// identical output: bit flips, truncation, emptiness, a stale format
/// header (sealed correctly, so only the header check can reject it), and
/// outright garbage.
#[test]
fn damaged_entries_recompute_byte_identically() {
    let dir = tmpdir("damage");
    let src = BASE.replace("unrelated", "renamed_for_damage_test");
    let want = fresh(&src);
    disk_engine(&dir).prepare(&src, 1).unwrap();
    let entry = || -> PathBuf {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "svdc"))
            .expect("one cache entry")
    };
    let pristine = std::fs::read(entry()).unwrap();

    let damages: Vec<Vec<u8>> = vec![
        {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
            b
        },
        pristine[..pristine.len() / 3].to_vec(),
        Vec::new(),
        sevuldet::integrity::seal(
            String::from_utf8(pristine.clone())
                .unwrap()
                .lines()
                .take_while(|l| !l.starts_with("sevuldet-footer"))
                .collect::<Vec<_>>()
                .join("\n")
                .replace("cache v1", "cache v0"),
        )
        .into_bytes(),
        b"not a cache entry at all\n".to_vec(),
    ];
    for (i, bytes) in damages.iter().enumerate() {
        std::fs::write(entry(), bytes).unwrap();
        let engine = disk_engine(&dir);
        let before = counters();
        assert_eq!(
            engine.prepare(&src, 1).unwrap(),
            want,
            "damage #{i} changed the report"
        );
        assert!(
            counters().misses > before.misses,
            "damage #{i} must count as a miss, not a hit"
        );
        // And the store healed itself: a fresh engine now gets a disk hit.
        let before_heal = counters();
        assert_eq!(disk_engine(&dir).prepare(&src, 1).unwrap(), want);
        assert!(
            counters().hits_disk > before_heal.hits_disk,
            "damage #{i} was not rewritten by the recompute"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The salsa-style tier: an edit to one function re-slices only gadgets
/// whose dependency set it intersects — and *any* edit that could change a
/// slice (involved function body, new caller, globals) invalidates.
#[test]
fn function_level_reuse_is_sound_and_effective() {
    let engine = QueryEngine::in_memory();
    engine.prepare(BASE, 1).unwrap();

    // Editing `unrelated` (outside sink/producer slices) reuses their
    // gadget memos: the function tier reports hits.
    let edited_unrelated = BASE.replace("y * 2", "y * 7");
    let before = counters();
    assert_eq!(
        engine.prepare(&edited_unrelated, 1).unwrap(),
        fresh(&edited_unrelated)
    );
    assert!(
        counters().hits_func > before.hits_func,
        "an unrelated edit must reuse at least one memoized gadget"
    );

    // A pure line shift (blank lines prepended) changes every gadget's
    // `line` but no function's text: tokens are reused, lines recomputed.
    let shifted = format!("\n\n\n{BASE}");
    let before = counters();
    let got = engine.prepare(&shifted, 1).unwrap();
    assert_eq!(got, fresh(&shifted));
    assert!(
        counters().hits_func > before.hits_func,
        "a line shift must not recompute any slice"
    );
    assert_ne!(
        got.gadgets[0].line,
        engine.prepare(BASE, 1).unwrap().gadgets[0].line,
        "shifted lines must be reported at their new positions"
    );

    // Editing `producer` — inside sink's inter-procedural slice — must
    // invalidate and recompute identically.
    let edited_producer = BASE.replace("data[0] = 1", "data[0] = 2");
    assert_eq!(
        engine.prepare(&edited_producer, 1).unwrap(),
        fresh(&edited_producer)
    );

    // Adding a *new caller* of `sink` extends its backward slice even
    // though no previously-involved function changed: the call-edge
    // signature must catch it.
    let with_caller =
        format!("{BASE}\nvoid extra(char *p) {{\n    char tmp[8];\n    sink(p, tmp);\n}}\n");
    assert_eq!(
        engine.prepare(&with_caller, 1).unwrap(),
        fresh(&with_caller)
    );

    // A previously-undefined callee gaining a definition lets forward
    // slices descend into it: also an invalidation.
    let base_with_undef = BASE.replace("strcpy(dst, src);", "helper(dst, src);");
    engine.prepare(&base_with_undef, 1).unwrap();
    let defined =
        format!("{base_with_undef}\nvoid helper(char *a, char *b) {{\n    strcpy(a, b);\n}}\n");
    assert_eq!(engine.prepare(&defined, 1).unwrap(), fresh(&defined));

    // Globals participate in every function's analysis: changing one
    // invalidates too (output equality is the observable).
    let with_global = format!("int limit = 10;\n\n{BASE}");
    engine.prepare(&with_global, 1).unwrap();
    let changed_global = format!("int limit = 99;\n\n{BASE}");
    assert_eq!(
        engine.prepare(&changed_global, 1).unwrap(),
        fresh(&changed_global)
    );
}

#[test]
fn memory_memo_evicts_at_capacity() {
    let engine = QueryEngine::open(&QueryConfig {
        mem_entries: 2,
        ..QueryConfig::default()
    })
    .unwrap();
    let srcs: Vec<String> = (0..3)
        .map(|i| format!("int f{i}(int x) {{ return x + {i}; }}"))
        .collect();
    let before = counters();
    for s in &srcs {
        engine.prepare(s, 1).unwrap();
    }
    assert!(
        counters().evictions > before.evictions,
        "third insert into a 2-entry memo must evict"
    );
    // The evicted (oldest) source recomputes — and still matches.
    let before = counters();
    assert_eq!(engine.prepare(&srcs[0], 1).unwrap(), fresh(&srcs[0]));
    assert!(counters().misses > before.misses);
}
