//! Deterministic input expansion for `sevuldet scan`: positional arguments
//! may be files *or* directories; directories are walked recursively in
//! sorted order, and the combined list is deduplicated by canonical path so
//! overlapping arguments (`scan src src/util.c .`) cannot yield duplicate
//! or reordered findings.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: VCS metadata, build output, and
/// editor droppings carry no scannable source and routinely hold huge trees.
const SKIP_DIRS: [&str; 4] = ["target", "node_modules", ".git", ".svn"];

/// Expands scan positionals into a deterministic, duplicate-free file list.
///
/// * A file argument is kept as given (any extension — naming a file is an
///   explicit request to scan it).
/// * A directory argument is walked recursively; only `*.c` files are
///   collected, entries are visited in byte-sorted order, hidden entries
///   (`.name`) and VCS/build directories (`target`, `node_modules`, `.git`,
///   `.svn`) are skipped, and symlinked directories are not followed (cycle
///   safety).
/// * The combined list is deduplicated by canonical path,
///   first-occurrence-wins, preserving the spelling the user (or the walk)
///   produced first — so reports are stable however the arguments overlap.
///
/// # Errors
///
/// Fails on a nonexistent argument or an unreadable directory; a file that
/// vanishes mid-walk is skipped, not fatal.
pub fn expand_paths(args: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = Vec::new();
    for arg in args {
        let path = Path::new(arg);
        let meta = fs::metadata(path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot read input {}: {e}", path.display()),
            )
        })?;
        if meta.is_dir() {
            walk_dir(path, &mut out)?;
        } else {
            out.push(path.to_path_buf());
        }
    }
    // Canonical-path dedupe, first occurrence wins. Canonicalization can
    // fail for races (file deleted since the walk); fall back to the lexical
    // path so the scan still reports the I/O error per-file downstream.
    let mut seen: HashSet<PathBuf> = HashSet::new();
    out.retain(|p| {
        let canon = fs::canonicalize(p).unwrap_or_else(|_| p.clone());
        seen.insert(canon)
    });
    Ok(out)
}

/// Depth-first sorted walk collecting `*.c` files.
fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("cannot read directory {}: {e}", dir.display()),
            )
        })?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if name.starts_with('.') {
            continue;
        }
        // symlink_metadata: do not follow symlinked directories (cycles).
        let meta = match fs::symlink_metadata(&path) {
            Ok(m) => m,
            Err(_) => continue,
        };
        if meta.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_dir(&path, out)?;
            }
        } else if meta.is_file() && name.ends_with(".c") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sevuldet-walk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn walks_sorted_filters_and_dedupes() {
        let dir = tmpdir("basic");
        fs::create_dir_all(dir.join("sub")).unwrap();
        fs::create_dir_all(dir.join(".hidden")).unwrap();
        fs::create_dir_all(dir.join("target")).unwrap();
        fs::write(dir.join("b.c"), "int b;").unwrap();
        fs::write(dir.join("a.c"), "int a;").unwrap();
        fs::write(dir.join("notes.txt"), "no").unwrap();
        fs::write(dir.join("sub/c.c"), "int c;").unwrap();
        fs::write(dir.join(".hidden/d.c"), "int d;").unwrap();
        fs::write(dir.join("target/e.c"), "int e;").unwrap();

        let args = vec![
            dir.to_str().unwrap().to_string(),
            // Overlapping explicit file + repeated dir: all collapse away.
            dir.join("a.c").to_str().unwrap().to_string(),
            dir.to_str().unwrap().to_string(),
        ];
        let got = expand_paths(&args).unwrap();
        let names: Vec<String> = got
            .iter()
            .map(|p| {
                p.strip_prefix(&dir)
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .replace('\\', "/")
            })
            .collect();
        assert_eq!(names, vec!["a.c", "b.c", "sub/c.c"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_file_kept_missing_arg_errors() {
        let dir = tmpdir("explicit");
        fs::write(dir.join("keep.cpp"), "x").unwrap();
        let got = expand_paths(&[dir.join("keep.cpp").to_str().unwrap().to_string()]).unwrap();
        assert_eq!(got.len(), 1);
        assert!(expand_paths(&[dir.join("nope.c").to_str().unwrap().to_string()]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
