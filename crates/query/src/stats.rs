//! Process-global cache counters, mirroring the kernel layer's
//! `workspace_counters` idiom: relaxed atomics bumped by every
//! [`QueryEngine`](crate::QueryEngine) in the process, snapshotted by the
//! serve layer's `/metrics` exposition and the CLI's `--profile` summary.
//!
//! The counters are process-wide rather than per-engine on purpose: the
//! serve metrics renderer has no handle on the engine (it may not even
//! exist when the server runs cache-less), and a process never runs two
//! engines with *different* stores outside of tests.

use std::sync::atomic::{AtomicU64, Ordering};

static HITS_MEM: AtomicU64 = AtomicU64::new(0);
static HITS_DISK: AtomicU64 = AtomicU64::new(0);
static HITS_FUNC: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static SIZE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Whole-file artifacts served from the in-memory memo table.
    pub hits_mem: u64,
    /// Whole-file artifacts served from the on-disk store.
    pub hits_disk: u64,
    /// Per-function gadget slices reused inside a recomputed file (the
    /// dependency-tracked salsa-style tier).
    pub hits_func: u64,
    /// Whole-file artifacts that had to be computed from source.
    pub misses: u64,
    /// Artifacts evicted from either cache tier (size pressure).
    pub evictions: u64,
    /// Current on-disk store size in bytes (0 when no store is open).
    pub size_bytes: u64,
}

impl CacheCounters {
    /// Total whole-file hits across both tiers (what
    /// `sevuldet_query_cache_hits_total` would sum to).
    pub fn hits(&self) -> u64 {
        self.hits_mem + self.hits_disk
    }
}

/// Snapshots every counter.
pub fn counters() -> CacheCounters {
    CacheCounters {
        hits_mem: HITS_MEM.load(Ordering::Relaxed),
        hits_disk: HITS_DISK.load(Ordering::Relaxed),
        hits_func: HITS_FUNC.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        size_bytes: SIZE_BYTES.load(Ordering::Relaxed),
    }
}

pub(crate) fn hit_mem() {
    HITS_MEM.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn hit_disk() {
    HITS_DISK.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn hit_func() {
    HITS_FUNC.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn evicted(n: u64) {
    EVICTIONS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn set_size(bytes: u64) {
    SIZE_BYTES.store(bytes, Ordering::Relaxed);
}

pub(crate) fn add_size(delta: i64) {
    if delta >= 0 {
        SIZE_BYTES.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        let sub = (-delta) as u64;
        // Saturating: a concurrent `set_size` can race this, and a gauge
        // that briefly reads low beats one that wraps to 2^64.
        let _ = SIZE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(sub))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_size_saturates() {
        let before = counters();
        hit_mem();
        hit_disk();
        hit_func();
        miss();
        evicted(2);
        let after = counters();
        assert_eq!(after.hits_mem, before.hits_mem + 1);
        assert_eq!(after.hits_disk, before.hits_disk + 1);
        assert_eq!(after.hits_func, before.hits_func + 1);
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.evictions, before.evictions + 2);
        assert_eq!(after.hits(), before.hits() + 2);
        set_size(10);
        add_size(-100);
        assert_eq!(counters().size_bytes, 0);
        add_size(25);
        assert_eq!(counters().size_bytes, 25);
    }
}
