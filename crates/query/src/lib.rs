//! # sevuldet-query
//!
//! Demand-driven incremental analysis for the SEVulDet pipeline: a
//! salsa-style query layer over the front half of a scan (lex → parse →
//! CFG/PDG → Algorithm-1 slice → normalize), keyed by content hash with
//! dependency-tracked invalidation, backed by a two-tier cache:
//!
//! * an **in-memory memo table** ([`QueryEngine`]) serving repeat queries
//!   within a process (the server's workers share one engine), plus a
//!   function-granular gadget memo that re-slices only what an edit
//!   actually touched;
//! * a **persistent artifact store** ([`ArtifactStore`]) under
//!   `--cache-dir`, each entry sealed with the workspace's CRC-32 footer
//!   and written atomically — a corrupt, truncated, or version-skewed
//!   entry is silently recomputed, never an error.
//!
//! The contract throughout: cached and cache-less scans produce
//! **byte-identical** reports. Cache state can only change *when* work
//! happens, never *what* comes out.
//!
//! ## Example
//!
//! ```
//! use sevuldet_query::{QueryConfig, QueryEngine};
//!
//! let engine = QueryEngine::in_memory();
//! let src = "void f(char *p) { strcpy(p, p); }";
//! let cold = engine.prepare(src, 1).unwrap();
//! let warm = engine.prepare(src, 1).unwrap(); // served from the memo
//! assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
//! assert!(sevuldet_query::stats::counters().hits_mem >= 1);
//! # let _ = QueryConfig::default();
//! ```
//!
//! Cache observability flows through [`stats::counters`], rendered by the
//! server's `/metrics` endpoint and the CLI's `--profile` summary.

pub mod engine;
pub mod stats;
pub mod store;
pub mod walk;

pub use engine::{QueryConfig, QueryEngine};
pub use stats::{counters, CacheCounters};
pub use store::{ArtifactStore, EntryStatus, StoreStats};
pub use walk::expand_paths;
