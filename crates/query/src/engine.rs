//! The demand-driven incremental engine: memoized `prepare` over the front
//! half of the pipeline (lex → parse → CFG/PDG → Algorithm-1 slice →
//! normalize), keyed by content hash, with salsa-style dependency-tracked
//! reuse at function granularity.
//!
//! ## Three tiers, from cheapest to most general
//!
//! 1. **In-memory file memo** — `sha256(source)` → `Arc<PreparedSource>`.
//!    A repeated scan of unchanged content inside one process is a clone.
//! 2. **Persistent artifact store** — the same key, sealed on disk
//!    ([`crate::store`]), shared across processes and with the serve
//!    workers. Damage is silently recomputed.
//! 3. **Function-level gadget memo** — when a *file* changes, its parse,
//!    analysis, and special tokens are recomputed (cheap), but each
//!    gadget's expensive slice+normalize step is reused if its recorded
//!    dependency set still holds. A gadget's dependencies are:
//!
//!    * the text hash of every function its slice touched
//!      (`slice.functions()`), seed included;
//!    * a *call-edge signature* over every call edge incident to those
//!      functions (catching new callers extending a backward slice and
//!      callees gaining a definition);
//!    * a *globals signature* over every non-function top-level item
//!      (globals and structs feed the analysis of every function).
//!
//!    Any mismatch recomputes the gadget — invalidation errs conservative,
//!    never stale. The memo is content-addressed (seed function hash +
//!    special-token ordinal), so it survives line-shifting edits elsewhere
//!    in the file and is even shared between files with identical
//!    functions.
//!
//! The engine's output contract is strict: for any input, `prepare`
//! returns **byte-for-byte** what [`sevuldet::prepare_source`] returns —
//! hits, misses, and partial function-level reuse are all invisible in the
//! report. The incremental tests pin this across edit scenarios, and the
//! fault-injection suite pins it across cache damage.

use crate::stats;
use crate::store::ArtifactStore;
use sevuldet::integrity::sha256_hex;
use sevuldet::par::parallel_map;
use sevuldet::{GadgetSpec, PreparedGadget, PreparedSource, ScanError};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_gadget::{
    build_gadget_from_slice, find_special_tokens, two_way_slice, Normalizer, SliceConfig,
    SpecialToken,
};
use sevuldet_lang::ast::{Item, Program};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// How a [`QueryEngine`] is set up.
#[derive(Debug, Clone, Default)]
pub struct QueryConfig {
    /// Directory for the persistent artifact store; `None` keeps the cache
    /// purely in-memory (still useful to a long-lived server).
    pub cache_dir: Option<PathBuf>,
    /// Soft on-disk size budget in bytes (oldest entries evicted past it);
    /// 0 = unbounded.
    pub max_bytes: u64,
    /// Bound on in-memory whole-file memo entries; 0 = the default (4096).
    pub mem_entries: usize,
}

const DEFAULT_MEM_ENTRIES: usize = 4096;
/// Bound on function-level gadget memos; the table is cleared wholesale
/// when it fills (simple, and 64k slices is far beyond any real repo's
/// working set).
const GADGET_MEMO_CAP: usize = 1 << 16;

/// In-memory whole-file memo with FIFO eviction.
#[derive(Debug, Default)]
struct FileMemo {
    map: HashMap<String, Arc<PreparedSource>>,
    order: VecDeque<String>,
}

/// Identity of one memoized gadget: the seed function's text hash plus the
/// special token's ordinal *within that function* (both stable under edits
/// anywhere else in the file).
type GadgetKey = (String, u32);

/// One memoized slice+normalize result and the facts it depends on.
#[derive(Debug)]
struct GadgetMemo {
    /// The normalized token stream (line numbers live outside it, so it is
    /// invariant under line-shifting edits elsewhere).
    tokens: Vec<String>,
    /// `(function name, text hash)` for every function the slice touched.
    deps: Vec<(String, String)>,
    /// Signature over call edges incident to `deps` (see module docs).
    callers_sig: String,
    /// Signature over non-function top-level items.
    globals_sig: String,
}

/// Per-file facts the validator compares memo dependencies against.
struct FileFacts {
    /// Function name → text hash (duplicate definitions fold together).
    fn_hashes: HashMap<String, String>,
    globals_sig: String,
}

impl FileFacts {
    fn extract(source: &str, program: &Program) -> FileFacts {
        let lines: Vec<&str> = source.lines().collect();
        let span_text = |span: sevuldet_lang::span::Span| -> String {
            let start = (span.start.line.max(1) as usize - 1).min(lines.len());
            let end = (span.end.line as usize).min(lines.len()).max(start);
            lines[start..end].join("\n")
        };
        let mut fn_hashes: HashMap<String, String> = HashMap::new();
        let mut globals = String::new();
        for item in &program.items {
            match item {
                Item::Function(f) => {
                    let h = sha256_hex(span_text(f.span).as_bytes());
                    // A redefined name folds both bodies into one hash, so
                    // either definition changing invalidates dependents.
                    fn_hashes
                        .entry(f.name.clone())
                        .and_modify(|prev| *prev = sha256_hex(format!("{prev}{h}").as_bytes()))
                        .or_insert(h);
                }
                Item::Global(d) => {
                    globals.push_str(&span_text(d.span));
                    globals.push('\n');
                }
                Item::Struct(s) => {
                    globals.push_str(&span_text(s.span));
                    globals.push('\n');
                }
            }
        }
        FileFacts {
            fn_hashes,
            globals_sig: sha256_hex(globals.as_bytes()),
        }
    }
}

/// The call-edge signature for an involved-function set: every
/// `caller→callee` edge touching the set, tagged with whether the callee
/// is *defined* in this file (an edge into a newly-defined callee must
/// invalidate, because the slice can now descend into it).
fn callers_signature(
    program: &Program,
    analysis: &ProgramAnalysis,
    involved: &BTreeSet<&str>,
) -> String {
    let mut edges: BTreeSet<String> = BTreeSet::new();
    for site in analysis.callgraph.sites() {
        if involved.contains(site.caller.as_str()) || involved.contains(site.callee.as_str()) {
            let defined = program.function(&site.callee).is_some();
            edges.insert(format!("{}>{}:{}", site.caller, site.callee, defined as u8));
        }
    }
    let joined: String = edges.into_iter().map(|e| e + "\n").collect();
    sha256_hex(joined.as_bytes())
}

impl GadgetMemo {
    /// Whether this memo is still valid under the current file facts.
    fn valid_for(&self, facts: &FileFacts, program: &Program, analysis: &ProgramAnalysis) -> bool {
        if self.globals_sig != facts.globals_sig {
            return false;
        }
        for (name, hash) in &self.deps {
            if facts.fn_hashes.get(name) != Some(hash) {
                return false;
            }
        }
        let involved: BTreeSet<&str> = self.deps.iter().map(|(n, _)| n.as_str()).collect();
        self.callers_sig == callers_signature(program, analysis, &involved)
    }
}

/// The incremental query engine. `&self` methods only — internal state
/// lives behind mutexes, so one engine can be shared by every serve worker
/// (an `Arc<QueryEngine>`), with the expensive compute path running outside
/// any lock.
#[derive(Debug)]
pub struct QueryEngine {
    spec: GadgetSpec,
    slice_cfg: SliceConfig,
    fingerprint: String,
    store: Option<ArtifactStore>,
    mem_entries: usize,
    files: Mutex<FileMemo>,
    gadgets: Mutex<HashMap<GadgetKey, Arc<GadgetMemo>>>,
}

impl QueryEngine {
    /// Opens an engine for the scan pipeline's configuration
    /// ([`GadgetSpec::path_sensitive`] — the one `sevuldet scan` and the
    /// server use).
    ///
    /// # Errors
    ///
    /// Propagates a cache-dir creation failure; everything after open
    /// degrades gracefully instead of erroring.
    pub fn open(config: &QueryConfig) -> io::Result<QueryEngine> {
        let spec = GadgetSpec::path_sensitive();
        let slice_cfg = spec.slice_config();
        // The fingerprint pins every knob that shapes a prepared artifact;
        // a change in any of them keys a disjoint cache namespace.
        let fingerprint = format!(
            "kind={:?} control_dep={} slice={:?}",
            spec.kind, spec.control_dep, slice_cfg
        );
        let store = match &config.cache_dir {
            Some(dir) => Some(ArtifactStore::open(dir, config.max_bytes)?),
            None => None,
        };
        Ok(QueryEngine {
            spec,
            slice_cfg,
            fingerprint,
            store,
            mem_entries: if config.mem_entries == 0 {
                DEFAULT_MEM_ENTRIES
            } else {
                config.mem_entries
            },
            files: Mutex::new(FileMemo::default()),
            gadgets: Mutex::new(HashMap::new()),
        })
    }

    /// An engine with no persistent store (in-memory memoization only).
    pub fn in_memory() -> QueryEngine {
        QueryEngine::open(&QueryConfig::default()).expect("no cache dir, cannot fail")
    }

    /// The persistent store, when one is open.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The pipeline fingerprint that namespaces this engine's artifacts.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The memoized equivalent of [`sevuldet::prepare_source`]: identical
    /// output for every input, served from the cheapest valid tier.
    ///
    /// # Errors
    ///
    /// [`ScanError::Parse`] when the source is not valid mini-C (parse
    /// failures are never cached — they carry no sliced artifact).
    pub fn prepare(&self, source: &str, jobs: usize) -> Result<PreparedSource, ScanError> {
        let _t = sevuldet_trace::span!("query.prepare");
        let key = ArtifactStore::key(source, &self.fingerprint);
        if let Some(hit) = self
            .files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(&key)
        {
            stats::hit_mem();
            sevuldet_trace::counter("query.cache.hit", 1.0);
            return Ok((**hit).clone());
        }
        if let Some(store) = &self.store {
            if let Some(prepared) = store.load(&key, &self.fingerprint) {
                stats::hit_disk();
                sevuldet_trace::counter("query.cache.hit", 1.0);
                self.remember(key, &prepared);
                return Ok(prepared);
            }
        }
        stats::miss();
        sevuldet_trace::counter("query.cache.miss", 1.0);
        let prepared = self.compute(source, jobs)?;
        if let Some(store) = &self.store {
            store.save(&key, &self.fingerprint, source, &prepared);
        }
        self.remember(key, &prepared);
        Ok(prepared)
    }

    /// Inserts into the bounded in-memory file memo.
    fn remember(&self, key: String, prepared: &PreparedSource) {
        let mut memo = self.files.lock().unwrap_or_else(|e| e.into_inner());
        if memo.map.contains_key(&key) {
            return;
        }
        while memo.map.len() >= self.mem_entries {
            match memo.order.pop_front() {
                Some(old) => {
                    if memo.map.remove(&old).is_some() {
                        stats::evicted(1);
                    }
                }
                None => break,
            }
        }
        memo.order.push_back(key.clone());
        memo.map.insert(key, Arc::new(prepared.clone()));
    }

    /// The recompute path: parse, analyze, and find special tokens fresh,
    /// then build each gadget — reusing any function-level memo whose
    /// dependency set still holds, slicing only what actually changed.
    fn compute(&self, source: &str, jobs: usize) -> Result<PreparedSource, ScanError> {
        // Same stage span as `prepare_source`, so per-stage dashboards and
        // `--profile` keep one name for "prepare cost" either way.
        let _t = sevuldet_trace::span!("scan.prepare");
        let program = sevuldet_lang::parse(source).map_err(|e| ScanError::Parse(e.to_string()))?;
        let analysis = ProgramAnalysis::analyze(&program);
        let specials = find_special_tokens(&program, &analysis);
        let facts = FileFacts::extract(source, &program);
        let ordinals = per_function_ordinals(&specials);

        // Partition into memo-served and to-be-sliced, preserving order.
        let mut gadgets: Vec<Option<PreparedGadget>> = Vec::with_capacity(specials.len());
        gadgets.resize_with(specials.len(), || None);
        let mut missing: Vec<usize> = Vec::new();
        {
            let memo = self.gadgets.lock().unwrap_or_else(|e| e.into_inner());
            for (i, st) in specials.iter().enumerate() {
                let reused = facts.fn_hashes.get(&st.func).and_then(|seed_hash| {
                    let m = memo.get(&(seed_hash.clone(), ordinals[i]))?;
                    m.valid_for(&facts, &program, &analysis)
                        .then(|| m.tokens.clone())
                });
                match reused {
                    Some(tokens) => {
                        stats::hit_func();
                        gadgets[i] = Some(PreparedGadget {
                            line: st.line,
                            category: st.category.abbrev(),
                            name: st.name.clone(),
                            tokens,
                        });
                    }
                    None => missing.push(i),
                }
            }
        }

        // Slice + assemble + normalize the rest, sharded like
        // `prepare_source` (parallel_map preserves order).
        let computed = parallel_map(&missing, jobs, |_, &i| {
            let st = &specials[i];
            let slice = two_way_slice(&analysis, &st.func, st.node, &self.slice_cfg);
            let gadget = build_gadget_from_slice(&program, &analysis, st, self.spec.kind, &slice);
            let tokens = Normalizer::normalize_gadget(&gadget).tokens();
            let deps: Vec<(String, String)> = slice
                .functions()
                .iter()
                .chain(std::iter::once(&st.func))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .map(|f| {
                    let hash = facts.fn_hashes.get(f).cloned().unwrap_or_default();
                    (f.clone(), hash)
                })
                .collect();
            let involved: BTreeSet<&str> = deps.iter().map(|(n, _)| n.as_str()).collect();
            let callers_sig = callers_signature(&program, &analysis, &involved);
            let memo = GadgetMemo {
                tokens: tokens.clone(),
                deps,
                callers_sig,
                globals_sig: facts.globals_sig.clone(),
            };
            let prepared = PreparedGadget {
                line: st.line,
                category: st.category.abbrev(),
                name: st.name.clone(),
                tokens,
            };
            (prepared, memo)
        });

        {
            let mut memo = self.gadgets.lock().unwrap_or_else(|e| e.into_inner());
            if memo.len() + computed.len() > GADGET_MEMO_CAP {
                stats::evicted(memo.len() as u64);
                memo.clear();
            }
            for (&i, (prepared, m)) in missing.iter().zip(computed) {
                let st = &specials[i];
                if let Some(seed_hash) = facts.fn_hashes.get(&st.func) {
                    memo.insert((seed_hash.clone(), ordinals[i]), Arc::new(m));
                }
                gadgets[i] = Some(prepared);
            }
        }

        let gadgets: Vec<PreparedGadget> = gadgets
            .into_iter()
            .map(|g| g.expect("every special token produced a gadget"))
            .collect();
        sevuldet_trace::counter("scan.gadgets", gadgets.len() as f64);
        Ok(PreparedSource { gadgets })
    }
}

/// For each special token, its 0-based ordinal among the specials of the
/// *same function* — the stable half of a gadget memo key.
fn per_function_ordinals(specials: &[SpecialToken]) -> Vec<u32> {
    let mut seen: HashMap<&str, u32> = HashMap::new();
    specials
        .iter()
        .map(|st| {
            let n = seen.entry(st.func.as_str()).or_insert(0);
            let ord = *n;
            *n += 1;
            ord
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_are_per_function() {
        let st = |func: &str| SpecialToken {
            category: sevuldet_gadget::Category::Fc,
            func: func.into(),
            node: sevuldet_analysis::NodeId(0),
            line: 1,
            name: "x".into(),
        };
        let specials = vec![st("a"), st("a"), st("b"), st("a"), st("b")];
        assert_eq!(per_function_ordinals(&specials), vec![0, 1, 0, 2, 1]);
    }
}
