//! The persistent artifact store: one sealed file per `(content hash,
//! pipeline fingerprint)` key holding a serialized [`PreparedSource`].
//!
//! Every entry rides the crash-safety machinery from
//! `sevuldet::integrity`: the payload is CRC-32 sealed ([`seal`]) and
//! written with the temp-file + fsync + atomic-rename protocol
//! ([`atomic_write`]), so a reader sees either a complete, checksummed
//! entry or nothing. The reader side inverts the contract deliberately:
//! a corrupt, truncated, or version-skewed entry is **silently treated as
//! a miss** (and deleted, so it cannot rot in place) — a cache must never
//! turn disk damage into a scan failure when recomputing is always
//! possible.
//!
//! ## Entry format (`<key>.svdc`)
//!
//! ```text
//! sevuldet-query-cache v1
//! spec <pipeline fingerprint>
//! source sha256=<hex of the source bytes>
//! gadgets <count>
//! g <line> <category> <name>
//! t <token> <token> ...
//! ...one g/t pair per gadget...
//! sevuldet-footer crc32=XXXXXXXX len=NNNN
//! ```
//!
//! Names and tokens are percent-escaped (`%`, space, and ASCII control
//! bytes), keeping the format line-oriented and greppable. The file name
//! *is* the cache key: `sha256(version || fingerprint || source)`, so a
//! pipeline-shape change or a source edit can never alias an old entry.

use crate::stats;
use sevuldet::integrity::{atomic_write, seal, sha256_hex, unseal};
use sevuldet::{PreparedGadget, PreparedSource};
use std::io;
use std::path::{Path, PathBuf};

/// Format version; bumping it orphans (and lazily replaces) every existing
/// entry, because the version participates in the key hash *and* the
/// header check.
pub const FORMAT_VERSION: &str = "v1";

/// Extension of store entries (everything else in the directory is
/// ignored, so a cache dir can be shared with other artifacts).
pub const ENTRY_EXT: &str = "svdc";

const MAGIC: &str = "sevuldet-query-cache";

/// The outcome of verifying one entry (the `cache verify` subcommand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryStatus {
    /// Seal and header both check out.
    Ok,
    /// The CRC-32 seal rejected the bytes (truncation, bit flip).
    Corrupt(String),
    /// Sealed fine but the header is from another format version or an
    /// unparseable shape — recomputed on next use.
    Stale(String),
    /// The entry could not be read at all.
    Unreadable(String),
}

/// Aggregate numbers for `cache stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `.svdc` entries present.
    pub entries: u64,
    /// Their total size in bytes.
    pub bytes: u64,
}

/// A directory of sealed artifact entries with a size budget.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// Soft size cap in bytes; 0 means unbounded.
    max_bytes: u64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `dir`. `max_bytes` of 0
    /// disables eviction.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures — an unwritable cache dir is
    /// an operator error, unlike a damaged entry.
    pub fn open(dir: &Path, max_bytes: u64) -> io::Result<ArtifactStore> {
        std::fs::create_dir_all(dir)?;
        let store = ArtifactStore {
            dir: dir.to_path_buf(),
            max_bytes,
        };
        stats::set_size(store.stats().bytes);
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key for a source under a pipeline fingerprint: the entry
    /// file stem.
    pub fn key(source: &str, fingerprint: &str) -> String {
        let mut data = Vec::with_capacity(
            MAGIC.len() + FORMAT_VERSION.len() + fingerprint.len() + source.len() + 3,
        );
        data.extend_from_slice(MAGIC.as_bytes());
        data.push(0);
        data.extend_from_slice(FORMAT_VERSION.as_bytes());
        data.push(0);
        data.extend_from_slice(fingerprint.as_bytes());
        data.push(0);
        data.extend_from_slice(source.as_bytes());
        sha256_hex(&data)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{ENTRY_EXT}"))
    }

    /// Loads an entry, or `None` when it is absent, corrupt, truncated, or
    /// from another format/fingerprint — *silent recompute* semantics. A
    /// damaged entry is removed so the next save rewrites it cleanly.
    pub fn load(&self, key: &str, fingerprint: &str) -> Option<PreparedSource> {
        let _t = sevuldet_trace::span!("query.store.load");
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match unseal(&text).ok().and_then(|p| decode(p, fingerprint)) {
            Some(prepared) => Some(prepared),
            None => {
                let len = text.len() as i64;
                if std::fs::remove_file(&path).is_ok() {
                    stats::add_size(-len);
                }
                None
            }
        }
    }

    /// Serializes, seals, and atomically writes one entry, then enforces
    /// the size budget. Write failures are swallowed (a read-only cache
    /// degrades to recompute-every-time; it must not fail the scan).
    pub fn save(&self, key: &str, fingerprint: &str, source: &str, prepared: &PreparedSource) {
        let _t = sevuldet_trace::span!("query.store.save");
        let sealed = seal(encode(fingerprint, source, prepared));
        let path = self.entry_path(key);
        let existed = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as i64;
        if atomic_write(&path, sealed.as_bytes()).is_ok() {
            stats::add_size(sealed.len() as i64 - existed);
            self.evict_to_budget(key);
        }
    }

    /// Evicts oldest-modified entries until the store fits `max_bytes`,
    /// never evicting `keep_key` (the entry just written).
    fn evict_to_budget(&self, keep_key: &str) {
        if self.max_bytes == 0 {
            return;
        }
        let mut entries = self.list_entries();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= self.max_bytes {
            return;
        }
        // Oldest first; ties broken by name for determinism.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let keep = self.entry_path(keep_key);
        let mut evicted = 0u64;
        for e in entries {
            if total <= self.max_bytes {
                break;
            }
            if e.path == keep {
                continue;
            }
            if std::fs::remove_file(&e.path).is_ok() {
                total = total.saturating_sub(e.len);
                stats::add_size(-(e.len as i64));
                evicted += 1;
            }
        }
        if evicted > 0 {
            stats::evicted(evicted);
        }
    }

    /// Counts entries and bytes currently present.
    pub fn stats(&self) -> StoreStats {
        let entries = self.list_entries();
        StoreStats {
            entries: entries.len() as u64,
            bytes: entries.iter().map(|e| e.len).sum(),
        }
    }

    /// Removes every entry, returning how many were deleted and how many
    /// bytes they held.
    ///
    /// # Errors
    ///
    /// Propagates the first deletion failure (`cache clear` wants a loud
    /// error, unlike the scan path).
    pub fn clear(&self) -> io::Result<StoreStats> {
        let mut removed = StoreStats::default();
        for e in self.list_entries() {
            std::fs::remove_file(&e.path)?;
            removed.entries += 1;
            removed.bytes += e.len;
            stats::add_size(-(e.len as i64));
        }
        Ok(removed)
    }

    /// Verifies the seal and header of every entry, in name order.
    pub fn verify(&self) -> Vec<(String, EntryStatus)> {
        let mut entries = self.list_entries();
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        entries
            .into_iter()
            .map(|e| {
                let name = e
                    .path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let status = match std::fs::read_to_string(&e.path) {
                    Err(err) => EntryStatus::Unreadable(err.to_string()),
                    Ok(text) => match unseal(&text) {
                        Err(err) => EntryStatus::Corrupt(err.to_string()),
                        Ok(payload) => match check_header(payload) {
                            Ok(()) => EntryStatus::Ok,
                            Err(msg) => EntryStatus::Stale(msg),
                        },
                    },
                };
                (name, status)
            })
            .collect()
    }

    fn list_entries(&self) -> Vec<EntryMeta> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        read.filter_map(|e| {
            let e = e.ok()?;
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) != Some(ENTRY_EXT) {
                return None;
            }
            let meta = e.metadata().ok()?;
            Some(EntryMeta {
                len: meta.len(),
                mtime: meta.modified().ok(),
                path,
            })
        })
        .collect()
    }
}

struct EntryMeta {
    path: PathBuf,
    len: u64,
    mtime: Option<std::time::SystemTime>,
}

/// Percent-escapes `%`, space, and ASCII control bytes so names and tokens
/// fit a space-separated line format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b == b'%' || b == b' ' || b < 0x21 {
            out.push('%');
            out.push_str(&format!("{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Maps a category abbreviation back to the `&'static str` the scan layer
/// uses (the strings must be pointer-stable across the process).
fn category_static(abbrev: &str) -> Option<&'static str> {
    match abbrev {
        "FC" => Some("FC"),
        "AU" => Some("AU"),
        "PU" => Some("PU"),
        "AE" => Some("AE"),
        _ => None,
    }
}

fn encode(fingerprint: &str, source: &str, prepared: &PreparedSource) -> String {
    let mut out = String::with_capacity(256 + prepared.gadgets.len() * 128);
    out.push_str(&format!("{MAGIC} {FORMAT_VERSION}\n"));
    out.push_str(&format!("spec {}\n", escape(fingerprint)));
    out.push_str(&format!(
        "source sha256={}\n",
        sha256_hex(source.as_bytes())
    ));
    out.push_str(&format!("gadgets {}\n", prepared.gadgets.len()));
    for g in &prepared.gadgets {
        out.push_str(&format!(
            "g {} {} {}\n",
            g.line,
            g.category,
            escape(&g.name)
        ));
        out.push('t');
        for t in &g.tokens {
            out.push(' ');
            out.push_str(&escape(t));
        }
        out.push('\n');
    }
    out
}

/// Validates only the magic/version line (what `verify` calls "stale" vs
/// "ok"; fingerprint mismatches are impossible by keying but checked by
/// [`decode`] anyway).
fn check_header(payload: &str) -> Result<(), String> {
    let first = payload.lines().next().unwrap_or_default();
    if first == format!("{MAGIC} {FORMAT_VERSION}") {
        Ok(())
    } else {
        Err(format!("unrecognized header `{first}`"))
    }
}

fn decode(payload: &str, fingerprint: &str) -> Option<PreparedSource> {
    let mut lines = payload.lines();
    if lines.next()? != format!("{MAGIC} {FORMAT_VERSION}") {
        return None;
    }
    let spec = lines.next()?.strip_prefix("spec ")?;
    if unescape(spec)? != fingerprint {
        return None;
    }
    lines.next()?.strip_prefix("source sha256=")?;
    let count: usize = lines.next()?.strip_prefix("gadgets ")?.parse().ok()?;
    let mut gadgets = Vec::with_capacity(count);
    for _ in 0..count {
        let g = lines.next()?.strip_prefix("g ")?;
        let mut fields = g.splitn(3, ' ');
        let line: u32 = fields.next()?.parse().ok()?;
        let category = category_static(fields.next()?)?;
        let name = unescape(fields.next()?)?;
        let t = lines.next()?;
        let rest = t
            .strip_prefix("t")
            .filter(|r| r.is_empty() || r.starts_with(' '))?;
        let tokens = rest
            .split_ascii_whitespace()
            .map(unescape)
            .collect::<Option<Vec<String>>>()?;
        gadgets.push(PreparedGadget {
            line,
            category,
            name,
            tokens,
        });
    }
    if lines.next().is_some() {
        return None; // trailing garbage: treat as damage
    }
    Some(PreparedSource { gadgets })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PreparedSource {
        PreparedSource {
            gadgets: vec![
                PreparedGadget {
                    line: 3,
                    category: "FC",
                    name: "strcpy".into(),
                    tokens: vec!["strcpy".into(), "(".into(), "var1".into(), ")".into()],
                },
                PreparedGadget {
                    line: 7,
                    category: "AE",
                    name: "weird %name\t".into(),
                    tokens: vec!["a b".into(), "%".into()],
                },
            ],
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("svd-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let p = sample();
        let decoded = decode(&encode("fp", "src", &p), "fp").expect("decodes");
        assert_eq!(decoded.gadgets.len(), p.gadgets.len());
        for (a, b) in decoded.gadgets.iter().zip(&p.gadgets) {
            assert_eq!(a.line, b.line);
            assert_eq!(a.category, b.category);
            assert_eq!(a.name, b.name);
            assert_eq!(a.tokens, b.tokens);
        }
    }

    #[test]
    fn wrong_fingerprint_or_version_is_a_miss() {
        let p = sample();
        let enc = encode("fp", "src", &p);
        assert!(decode(&enc, "other-fp").is_none());
        let skewed = enc.replace("cache v1", "cache v0");
        assert!(decode(&skewed, "fp").is_none());
        assert!(check_header(&skewed).is_err());
        assert!(check_header(&enc).is_ok());
    }

    #[test]
    fn save_load_and_damage_fallback() {
        let dir = tmp("roundtrip");
        let store = ArtifactStore::open(&dir, 0).expect("open");
        let p = sample();
        let key = ArtifactStore::key("int main() {}", "fp");
        assert!(store.load(&key, "fp").is_none());
        store.save(&key, "fp", "int main() {}", &p);
        let loaded = store.load(&key, "fp").expect("hit");
        assert_eq!(loaded.gadgets[1].name, p.gadgets[1].name);
        assert_eq!(store.stats().entries, 1);
        for (_, status) in store.verify() {
            assert_eq!(status, EntryStatus::Ok);
        }

        // Flip one payload byte: load treats it as a miss AND removes it.
        let path = dir.join(format!("{key}.{ENTRY_EXT}"));
        let mut bytes = std::fs::read(&path).expect("entry");
        bytes[40] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(store.load(&key, "fp").is_none());
        assert!(!path.exists(), "damaged entry is deleted");
        assert_eq!(store.stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_and_eviction_respect_budget() {
        let dir = tmp("evict");
        // ~200 bytes per entry; cap at 3 entries' worth.
        let p = sample();
        let one = seal(encode("fp", "s0", &p)).len() as u64;
        let store = ArtifactStore::open(&dir, 3 * one + 10).expect("open");
        let before = crate::stats::counters().evictions;
        for i in 0..5 {
            let src = format!("s{i}");
            let key = ArtifactStore::key(&src, "fp");
            store.save(&key, "fp", &src, &p);
        }
        let s = store.stats();
        assert!(s.bytes <= 3 * one + 10, "{} > budget", s.bytes);
        assert!(s.entries < 5);
        assert!(crate::stats::counters().evictions > before);
        // The most recent entry always survives its own save.
        let key4 = ArtifactStore::key("s4", "fp");
        assert!(store.load(&key4, "fp").is_some());
        let cleared = store.clear().expect("clear");
        assert_eq!(cleared.entries, store.stats().entries + cleared.entries);
        assert_eq!(store.stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
