//! A self-contained, dependency-free subset of the `criterion` 0.5 API,
//! vendored so the workspace's benches build and run in offline
//! environments. It implements the surface this repository uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both forms) — with a
//! simple calibrated wall-clock measurement instead of criterion's full
//! statistical machinery: each benchmark is warmed up, then timed over
//! enough iterations to fill a sampling window, and the mean time per
//! iteration is printed.
//!
//! Like real criterion, passing `--test` on the bench binary's command line
//! (`cargo bench -- --test`) switches to *test mode*: every routine runs
//! exactly once, untimed, so CI can verify the benchmarks still execute
//! without paying for warm-up and measurement windows.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] groups setup outputs. All variants behave
/// identically here (setup always runs once per timed routine call and is
/// excluded from measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measurement configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(50),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (kept for API compatibility; this
    /// implementation scales its measurement window with it).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            window: self.measurement_time,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(_) if self.test_mode => println!("{id:<40} test mode: ran once, ok"),
            Some(r) => println!(
                "{id:<40} time: {:>12} /iter  ({} iters)",
                format_ns(r.ns_per_iter),
                r.iters
            ),
            None => println!("{id:<40} (no measurement recorded)"),
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(&format!("  {id}"), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

struct Measurement {
    ns_per_iter: f64,
    iters: u64,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warm_up: Duration,
    window: Duration,
    test_mode: bool,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = Some(Measurement {
                ns_per_iter: 0.0,
                iters: 1,
            });
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measurement: enough iterations to fill the window.
        let target = (self.window.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64;
        let iters = target.clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.result = Some(Measurement {
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.result = Some(Measurement {
                ns_per_iter: 0.0,
                iters: 1,
            });
            return;
        }
        // Warm-up.
        let mut timed = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while timed < self.warm_up || warm_iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = timed.as_nanos() as f64 / warm_iters as f64;
        let target = (self.window.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64;
        let iters = target.clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some(Measurement {
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, in either the positional or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        c.bench_function("noop", |b| b.iter(|| x = x.wrapping_add(1)));
        assert!(x > 0, "routine actually ran");
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "iter in test mode runs the routine once");
        let mut batched_calls = 0u64;
        c.bench_function("once_batched", |b| {
            b.iter_batched(
                || 3u64,
                |v| {
                    batched_calls += 1;
                    v * 2
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(batched_calls, 1, "iter_batched in test mode runs once");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
