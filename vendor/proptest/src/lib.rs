//! A self-contained, dependency-free subset of the `proptest` 1.x API,
//! vendored so the workspace builds and tests in offline environments. It
//! covers what this repository's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`Strategy`] with `prop_map` and `boxed`, [`BoxedStrategy`],
//! * [`any`], integer-range and tuple strategies, [`Just`],
//! * [`prop_oneof!`] (weighted and unweighted), and [`collection::vec`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the case number, and generation is deterministic per test name, so
//! failures reproduce exactly from the panic message alone.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator driving value generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from a test name (FNV-1a), so every test gets a
    /// distinct but reproducible stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seeded(h)
    }

    /// A generator seeded from a `u64` via SplitMix64 expansion.
    pub fn seeded(seed: u64) -> TestRng {
        let mut s = [0u64; 4];
        let mut x = seed;
        for word in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Error carried out of a failing property body by the `prop_assert!` family.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn new(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Weighted union of strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<V> OneOf<V> {
    /// Builds a weighted union.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, Strategy, TestRng};

    /// Strategy for vectors with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem` values with lengths in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    }};
}

/// Fails the enclosing property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let s = (0u8..4, 10usize..20);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_honors_weights_roughly() {
        let mut rng = TestRng::for_test("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::for_test("vec");
        let s = crate::collection::vec(any::<u8>(), 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, x + 1);
        }
    }
}
