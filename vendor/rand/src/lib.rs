//! A self-contained, dependency-free subset of the `rand` 0.8 API, vendored
//! so the workspace builds in offline environments. It covers exactly what
//! this repository uses: [`rngs::StdRng`], [`SeedableRng`] (including
//! `seed_from_u64`), [`Rng`] (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — a different stream than upstream `rand`'s
//! ChaCha12, but with the same determinism guarantees: equal seeds produce
//! equal streams on every platform, and cloned generators evolve
//! independently.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same scheme upstream `rand` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// A uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice utilities.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
