//! Profile the full pipeline as a library embedder: enable span recording,
//! train a tiny detector, scan a source, then render the same per-stage
//! table and Chrome trace the CLI's `--profile` / `--trace-out` flags
//! produce. Recording changes no output bytes — the scan report here is
//! identical to an untraced run.
//!
//! Run with: `cargo run --example profile_pipeline`

use sevuldet::{score_source, Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};

fn main() {
    sevuldet::trace::set_recording(true);

    // Train a deliberately tiny detector; every stage underneath — parsing,
    // PDG analysis, Algorithm-1 slicing, word2vec, per-layer forward and
    // backward — emits spans into the recording.
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        ..TrainConfig::quick()
    };
    let det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);

    let report = score_source(
        &det,
        r#"void process(char *dest, char *data) {
            int n = atoi(data);
            strncpy(dest, data, n);
        }"#,
        1,
    )
    .expect("scans");
    println!("scan: {}\n", report.to_json("example.c"));

    // The CLI's `--profile` table ...
    let trace = sevuldet::trace::take();
    sevuldet::trace::set_recording(false);
    print!("{}", trace.profile_table());

    // ... and the `--trace-out` Perfetto file, from the same recording.
    let out = std::env::temp_dir().join("profile_pipeline_trace.json");
    std::fs::write(&out, trace.chrome_json()).expect("write trace");
    println!(
        "\nwrote {} spans to {} (open in chrome://tracing or ui.perfetto.dev)",
        trace.spans.len(),
        out.display()
    );
}
