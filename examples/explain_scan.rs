//! Explainable scanning: score a suspicious source with a trained detector,
//! attach the Fig.-6 per-token relevance heatmap to each finding, and combine
//! two detectors into an ensemble vote — the same three report shapes the
//! HTTP server returns for `{"explain": true}` and `{"model": "ensemble:…"}`
//! (see `docs/API.md`).
//!
//! Run with: `cargo run --example explain_scan`

use sevuldet::{
    attach_explanations, combine_ensemble, prepare_source, score_prepared_mut, Detector,
    GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};

/// Trains a small detector on the synthetic SARD-style corpus. Different
/// seeds give genuinely different models, which is what makes the ensemble
/// vote below interesting.
fn train_small(kind: ModelKind, seed: u64) -> Detector {
    let samples = sard::generate(&SardConfig {
        per_category: 30,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        epochs: 6,
        seed,
        ..TrainConfig::quick()
    };
    Detector::train(&corpus, kind, &cfg)
}

fn main() {
    // The paper's Fig. 1 vulnerable shape: the length guard exists, but the
    // copy happens outside it.
    let source = r#"
void handle_packet(char *dest, char *payload) {
    int len = atoi(payload);
    if (len < 64) {
        puts("length ok");
    }
    strncpy(dest, payload, len);
}
"#;
    let prepared = vec![prepare_source(source, 1).expect("valid mini-C")];

    // 1. Single model, with explanations. `attach_explanations` ranks each
    //    finding's tokens by attention relevance (percent-of-max; the top
    //    token is always 100.0) and summarizes the CBAM channel/spatial
    //    gates. Architectures without an attention or saliency signal
    //    report a typed `explain_unavailable` instead of an empty heatmap.
    println!("training the champion (SEVulDet CNN) ...");
    let mut champion = train_small(ModelKind::SevulDet, 42);
    let mut report = score_prepared_mut(&mut champion, &prepared, 1)
        .expect("scoring")
        .remove(0);
    attach_explanations(&mut champion, &mut report);
    println!("\n--- explained single-model report ---");
    println!("{}", report.to_json("handle_packet.c"));
    for f in &report.findings {
        if let Some(exp) = &f.explain {
            println!(
                "finding at line {}: top tokens {:?}",
                f.line,
                exp.tokens
                    .iter()
                    .map(|t| format!("{} ({:.0}%)", t.token, t.percent))
                    .collect::<Vec<_>>()
            );
        }
    }

    // 2. An ensemble of two models: mean score, strict-majority flag, and
    //    the per-member scores preserved in each finding's `members` array.
    println!("\ntraining the challenger (BGRU) ...");
    let mut challenger = train_small(ModelKind::Bgru, 7);
    let challenger_report = score_prepared_mut(&mut challenger, &prepared, 1)
        .expect("scoring")
        .remove(0);
    let members = vec![
        ("champion".to_string(), report),
        ("challenger".to_string(), challenger_report),
    ];
    let mut combined = combine_ensemble(&members).expect("non-empty ensemble");
    combined.model = Some("ensemble:champion,challenger".to_string());
    println!("\n--- ensemble report ---");
    println!("{}", combined.to_json("handle_packet.c"));
}
