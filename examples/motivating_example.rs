//! The paper's motivating example (Fig. 1), reproduced end to end: a safe
//! program (sink inside the guard) and a vulnerable twin (identical sink
//! after the guard) produce byte-identical *classic* code gadgets — so any
//! classifier is pinned at 50% on them — while the *path-sensitive* gadgets
//! of Algorithm 1 differ.
//!
//! Run with: `cargo run --example motivating_example`

use sevuldet_analysis::ProgramAnalysis;
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer, SliceConfig};

const SAFE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        strncpy(dest, data, n);
    }
}"#;

const VULNERABLE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

fn gadget_text(source: &str, kind: GadgetKind) -> String {
    let program = sevuldet_lang::parse(source).expect("valid mini-C");
    let analysis = ProgramAnalysis::analyze(&program);
    let tokens = find_special_tokens(&program, &analysis);
    let strncpy = tokens
        .iter()
        .find(|t| t.name == "strncpy")
        .expect("strncpy token");
    let gadget = build_gadget(&program, &analysis, strncpy, kind, &SliceConfig::default());
    let normalized = Normalizer::normalize_gadget(&gadget);
    normalized
        .lines
        .iter()
        .map(|l| l.tokens.join(" "))
        .filter(|t| !t.contains("puts")) // slice-irrelevant filler
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    println!("--- safe program ---\n{SAFE}\n");
    println!("--- vulnerable twin ---\n{VULNERABLE}\n");

    let cg_safe = gadget_text(SAFE, GadgetKind::Classic);
    let cg_vuln = gadget_text(VULNERABLE, GadgetKind::Classic);
    println!("classic gadget (safe):\n{cg_safe}\n");
    println!("classic gadget (vulnerable):\n{cg_vuln}\n");
    println!(
        "classic gadgets identical: {}  ← the Fig. 1 problem\n",
        cg_safe == cg_vuln
    );

    let ps_safe = gadget_text(SAFE, GadgetKind::PathSensitive);
    let ps_vuln = gadget_text(VULNERABLE, GadgetKind::PathSensitive);
    println!("path-sensitive gadget (safe):\n{ps_safe}\n");
    println!("path-sensitive gadget (vulnerable):\n{ps_vuln}\n");
    println!(
        "path-sensitive gadgets identical: {}  ← Algorithm 1 disambiguates",
        ps_safe == ps_vuln
    );

    assert_eq!(cg_safe, cg_vuln, "classic gadgets must collide");
    assert_ne!(ps_safe, ps_vuln, "path-sensitive gadgets must differ");
}
