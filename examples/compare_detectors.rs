//! Fig.-5-style comparison on a small corpus: the classical static
//! detectors (Flawfinder, RATS, Checkmarx, VUDDY) against a trained
//! SEVulDet, all evaluated at the program level.
//!
//! Run with: `cargo run --example compare_detectors`

use rand::seq::SliceRandom;
use rand::SeedableRng;
use sevuldet::{Confusion, Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_static::{Checkmarx, Flawfinder, Rats, StaticDetector, Vuddy};

fn main() {
    let mut samples = sard::generate(&SardConfig {
        per_category: 40,
        ..SardConfig::default()
    });
    // Shuffle before splitting — the generator emits categories in order.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    samples.shuffle(&mut rng);
    let n_test = samples.len() / 4;
    let (test, train) = samples.split_at(n_test);
    println!(
        "{} training programs, {} test programs\n",
        train.len(),
        test.len()
    );

    let mut results: Vec<(&str, Confusion)> = Vec::new();

    let flawfinder = Flawfinder;
    results.push(("Flawfinder", eval(test, |p| flawfinder.flags(p, 4))));
    let rats = Rats;
    results.push(("RATS", eval(test, |p| rats.flags(p, 3))));
    let checkmarx = Checkmarx;
    results.push(("Checkmarx", eval(test, |p| checkmarx.flags(p, 4))));

    let mut vuddy = Vuddy::new();
    for p in train.iter().filter(|p| p.vulnerable) {
        vuddy.fit_vulnerable_functions(&p.source, &p.flaw_lines);
    }
    results.push(("VUDDY", eval(test, |p| vuddy.flags(p))));

    let spec = GadgetSpec::path_sensitive();
    let corpus = spec.extract(train);
    println!("training SEVulDet on {} gadgets ...\n", corpus.len());
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &TrainConfig::quick());
    let mut c = Confusion::default();
    for p in test {
        let gadgets = spec.extract(std::slice::from_ref(p));
        // Program-level verdict: the most suspicious gadget must clear the
        // paper's 0.8 threshold (any-gadget-at-0.5 compounds false alarms).
        let max_p = gadgets
            .items
            .iter()
            .map(|g| det.predict(&g.tokens))
            .fold(0.0f64, f64::max);
        c.record(max_p > 0.8, p.vulnerable);
    }
    results.push(("SEVulDet", c));

    println!(
        "{:<12}{:>8} {:>8} {:>8} {:>8} {:>8}",
        "Tool", "FPR%", "FNR%", "A%", "P%", "F1%"
    );
    for (name, c) in results {
        let (fpr, fnr, a, p, f1) = c.percentages();
        println!("{name:<12}{fpr:>8.1} {fnr:>8.1} {a:>8.1} {p:>8.1} {f1:>8.1}");
    }
}

fn eval(test: &[sevuldet_dataset::ProgramSample], flag: impl Fn(&str) -> bool) -> Confusion {
    let mut c = Confusion::default();
    for p in test {
        c.record(flag(&p.source), p.vulnerable);
    }
    c
}
