//! Hunting the Xen CVE analogues (the paper's §IV-F workflow): train
//! SEVulDet on the SARD-style corpus, then scan the three real-world-style
//! CVE programs — printing each verdict and, for the CVE-2016-9776 gadget,
//! the Fig.-6-style attention ranking. An AFL-style fuzzing campaign runs
//! alongside for the Table VII comparison.
//!
//! Run with: `cargo run --example xen_hunt`

use sevuldet::{top_tokens, Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, xen, SardConfig};
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer};
use sevuldet_interp::{fuzz, FuzzConfig, FuzzTarget};

fn main() {
    // Train on the synthetic SARD-style corpus.
    let samples = sard::generate(&SardConfig {
        per_category: 50,
        ..SardConfig::default()
    });
    let spec = GadgetSpec::path_sensitive();
    let corpus = spec.extract(&samples);
    println!("training SEVulDet on {} gadgets ...", corpus.len());
    let cfg = TrainConfig::quick();
    let mut detector = Detector::train(&corpus, ModelKind::SevulDet, &cfg);

    for case in xen::cve_cases() {
        println!(
            "\n=== {} ({}, {}) ===",
            case.cve, case.file, case.xen_version
        );

        // Static/learned detection: classify every gadget of the program.
        let program = sevuldet_lang::parse(&case.vulnerable.source).expect("parses");
        let analysis = ProgramAnalysis::analyze(&program);
        let specials = find_special_tokens(&program, &analysis);
        let mut flagged = 0usize;
        let mut flagged_on_flaw = false;
        for st in &specials {
            let gadget = build_gadget(
                &program,
                &analysis,
                st,
                GadgetKind::PathSensitive,
                &spec.slice_config(),
            );
            let tokens = Normalizer::normalize_gadget(&gadget).tokens();
            if detector.is_vulnerable(&tokens) {
                flagged += 1;
                if case.vulnerable.flaw_lines.contains(&st.line) {
                    flagged_on_flaw = true;
                }
            }
        }
        println!(
            "SEVulDet: {flagged}/{} gadgets flagged; flaw-line gadget flagged: {flagged_on_flaw}",
            specials.len()
        );

        // AFL-style fuzzing on the harness.
        let campaign = fuzz(
            &program,
            &FuzzTarget::Harness(case.harness.to_string()),
            &FuzzConfig {
                iterations: 3000,
                seed: 7,
                ..FuzzConfig::default()
            },
        );
        match campaign.crashes.first() {
            Some(c) => println!(
                "AFL-sim: crash after ≤{} execs: {} (input {:?})",
                campaign.execs,
                c.fault,
                String::from_utf8_lossy(&c.input)
            ),
            None => println!(
                "AFL-sim: no crash in {} execs ({} edges covered)",
                campaign.execs, campaign.edges
            ),
        }
    }

    // Fig. 6: attention over the CVE-2016-9776 gadget.
    let case = xen::cve_2016_9776();
    let program = sevuldet_lang::parse(&case.vulnerable.source).expect("parses");
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    let seed = specials
        .iter()
        .find(|t| t.func == "fec_receive" && case.vulnerable.flaw_lines.contains(&t.line))
        .expect("stride token");
    let gadget = build_gadget(
        &program,
        &analysis,
        seed,
        GadgetKind::PathSensitive,
        &spec.slice_config(),
    );
    let tokens = Normalizer::normalize_gadget(&gadget).tokens();
    println!("\n=== Fig. 6: top attention tokens for the 9776 gadget ===");
    for r in top_tokens(&mut detector, &tokens, 10) {
        println!(
            "{:>8}  {:>6.1}%  {}",
            r.token,
            r.percent,
            "#".repeat((r.percent / 5.0) as usize)
        );
    }
}
