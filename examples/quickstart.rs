//! Quickstart: parse a C function, extract its path-sensitive code gadget,
//! train a small SEVulDet detector on a synthetic corpus, and classify the
//! gadget.
//!
//! Run with: `cargo run --example quickstart`

use sevuldet::{Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer, SliceConfig};

fn main() {
    // 1. A suspicious function: the guard exists, but the copy is outside it
    //    (the paper's Fig. 1 vulnerable shape).
    let source = r#"
void handle_packet(char *dest, char *payload) {
    int len = atoi(payload);
    if (len < 64) {
        puts("length ok");
    }
    strncpy(dest, payload, len);
}
"#;
    let program = sevuldet_lang::parse(source).expect("valid mini-C");
    let analysis = ProgramAnalysis::analyze(&program);

    // 2. Find the special tokens (Step I.2) and build the path-sensitive
    //    gadget for the strncpy call (Steps I.3-I.4, Algorithm 1).
    let tokens = find_special_tokens(&program, &analysis);
    let strncpy = tokens
        .iter()
        .find(|t| t.name == "strncpy")
        .expect("strncpy special token");
    let gadget = build_gadget(
        &program,
        &analysis,
        strncpy,
        GadgetKind::PathSensitive,
        &SliceConfig::default(),
    );
    println!("path-sensitive code gadget:\n{gadget}\n");

    // 3. Train a small detector on a synthetic SARD-style corpus.
    let corpus_cfg = SardConfig {
        per_category: 40,
        ..SardConfig::default()
    };
    let samples = sard::generate(&corpus_cfg);
    let spec = GadgetSpec::path_sensitive();
    let corpus = spec.extract(&samples);
    println!(
        "training on {} gadgets ({} vulnerable) ...",
        corpus.len(),
        corpus.vulnerable()
    );
    let cfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::quick()
    };
    let mut detector = Detector::train(&corpus, ModelKind::SevulDet, &cfg);

    // 4. Classify the gadget (Step III normalization first).
    let normalized = Normalizer::normalize_gadget(&gadget);
    let probability = detector.predict(&normalized.tokens());
    println!(
        "vulnerability probability: {probability:.3} -> {}",
        if probability > cfg.threshold {
            "FLAWED"
        } else {
            "looks clean"
        }
    );
}
