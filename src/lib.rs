//! Umbrella crate of the SEVulDet reproduction: re-exports the workspace
//! crates so the examples and integration tests in this repository can
//! reach everything through one dependency. Library users should depend on
//! the individual `sevuldet-*` crates instead.

pub use sevuldet as core;
pub use sevuldet_analysis as analysis;
pub use sevuldet_dataset as dataset;
pub use sevuldet_embedding as embedding;
pub use sevuldet_gadget as gadget;
pub use sevuldet_interp as interp;
pub use sevuldet_lang as lang;
pub use sevuldet_nn as nn;
pub use sevuldet_static as staticdet;
